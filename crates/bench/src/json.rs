//! Machine-readable perf-trajectory emission for CI.
//!
//! The `perf-smoke` CI job runs the quick-mode perf experiments and
//! uploads a `BENCH_<n>.json` artifact per PR, seeding a perf trajectory
//! the repository can trend across merges. The wire shape is one object
//! keyed by experiment id:
//!
//! ```json
//! {
//!   "e15": { "wall_ms": 12.5, "trees_grown": 48, "cache_hit_rate": 0.62,
//!            "queue_wait_p50": 0.0, "queue_wait_p99": 0.0, "rejection_rate": 0.0,
//!            "net_p50_ms": 0.0, "net_p99_ms": 0.0, "net_p999_ms": 0.0,
//!            "cache_hit_rate_region": 0.0, "cache_hit_rate_rr": 0.0,
//!            "churn_hit_rate_surgical": 0.0, "churn_hit_rate_dropall": 0.0,
//!            "continent_settled_ratio": 0.0, "continent_ms_per_batch": 0.0,
//!            "lint_unsafe_blocks": 0.0, "lint_allowed_sites": 0.0 }
//! }
//! ```
//!
//! `wall_ms` is measured by the harness around the experiment run; every
//! other field comes from the experiment's recorded
//! [`ExperimentTable::metric`] values (0 when an experiment does not
//! track one — e.g. `cache_hit_rate` before `e15` existed, the gateway
//! latency trio before `e16`, or the network latency trio before `e17`).
//! Keeping the emitter on table metrics rather than formatted rows means
//! trend tooling never screen-scrapes.

use crate::table::ExperimentTable;

/// One experiment's perf summary.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfPoint {
    /// Experiment id, lowercase (`"e15"`).
    pub experiment: String,
    /// Wall time of the experiment run, in milliseconds.
    pub wall_ms: f64,
    /// Spanning trees the experiment's measured runs grew.
    pub trees_grown: u64,
    /// Cache hit rate of the experiment's cached configuration (0 when
    /// the experiment has no cache axis).
    pub cache_hit_rate: f64,
    /// Median gateway queue wait in simulated seconds (0 when the
    /// experiment has no admission queue axis).
    pub queue_wait_p50: f64,
    /// p99 gateway queue wait in simulated seconds (0 when untracked).
    pub queue_wait_p99: f64,
    /// Fraction of submissions refused at the door or shed by deadline
    /// (0 when untracked).
    pub rejection_rate: f64,
    /// Median end-to-end wire latency in milliseconds (0 when the
    /// experiment has no network axis).
    pub net_p50_ms: f64,
    /// p99 end-to-end wire latency in milliseconds (0 when untracked).
    pub net_p99_ms: f64,
    /// p999 end-to-end wire latency in milliseconds (0 when untracked).
    pub net_p999_ms: f64,
    /// Tree-cache hit rate of the region-owned placement (0 when the
    /// experiment has no placement axis — only `e18` tracks it).
    pub cache_hit_rate_region: f64,
    /// Tree-cache hit rate of the round-robin placement on the identical
    /// stream (0 when untracked).
    pub cache_hit_rate_rr: f64,
    /// Tree-cache hit rate under rush-hour churn with surgical
    /// `update_weights` invalidation (0 when the experiment has no churn
    /// axis — only `e19` tracks it).
    pub churn_hit_rate_surgical: f64,
    /// Tree-cache hit rate of the drop-all `swap_map` refresh on the
    /// identical churned stream (0 when untracked).
    pub churn_hit_rate_dropall: f64,
    /// Nodes settled by the ALT-guided continent batch as a fraction of
    /// the plain-Dijkstra batch (0 when the experiment has no
    /// goal-direction axis — only `e20` tracks it).
    pub continent_settled_ratio: f64,
    /// Wall milliseconds per guided continent batch (0 when untracked).
    pub continent_ms_per_batch: f64,
    /// Size of the workspace's censused `unsafe` surface, from the
    /// `lint` pseudo-experiment (0 when the run did not include it).
    pub lint_unsafe_blocks: f64,
    /// Justified allow-marker sites counted by the same lint run (0 when
    /// untracked) — the workspace's explicit-exception surface.
    pub lint_allowed_sites: f64,
}

impl PerfPoint {
    /// Build a point from a finished experiment table and its measured
    /// wall time, reading the table's recorded metrics.
    pub fn from_table(table: &ExperimentTable, wall_ms: f64) -> Self {
        let metric = |name: &str| table.metric_value(name).unwrap_or(0.0);
        PerfPoint {
            experiment: table.id.to_ascii_lowercase(),
            wall_ms,
            trees_grown: metric("trees_grown") as u64,
            cache_hit_rate: metric("cache_hit_rate"),
            queue_wait_p50: metric("queue_wait_p50"),
            queue_wait_p99: metric("queue_wait_p99"),
            rejection_rate: metric("rejection_rate"),
            net_p50_ms: metric("net_p50_ms"),
            net_p99_ms: metric("net_p99_ms"),
            net_p999_ms: metric("net_p999_ms"),
            cache_hit_rate_region: metric("cache_hit_rate_region"),
            cache_hit_rate_rr: metric("cache_hit_rate_rr"),
            churn_hit_rate_surgical: metric("churn_hit_rate_surgical"),
            churn_hit_rate_dropall: metric("churn_hit_rate_dropall"),
            continent_settled_ratio: metric("continent_settled_ratio"),
            continent_ms_per_batch: metric("continent_ms_per_batch"),
            lint_unsafe_blocks: metric("lint_unsafe_blocks"),
            lint_allowed_sites: metric("lint_allowed_sites"),
        }
    }
}

/// The full artifact: an ordered set of [`PerfPoint`]s serialized as one
/// `experiment → {wall_ms, trees_grown, cache_hit_rate, queue_wait_p50,
/// queue_wait_p99, rejection_rate}` object.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PerfTrajectory {
    /// Points in run order (the JSON object preserves it).
    pub points: Vec<PerfPoint>,
}

impl PerfTrajectory {
    /// Record a point, replacing any earlier one for the same experiment
    /// — the serialized form is an object keyed by experiment id, so
    /// duplicate ids (e.g. `experiments e13 e13`) must collapse to one
    /// key (last run wins) rather than emit duplicate-key JSON.
    pub fn record(&mut self, point: PerfPoint) {
        match self.points.iter_mut().find(|p| p.experiment == point.experiment) {
            Some(existing) => *existing = point,
            None => self.points.push(point),
        }
    }

    /// Serialize to the artifact's JSON form (pretty-printed — the file
    /// is read by humans diffing two CI runs as often as by tooling).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("perf points always serialize")
    }
}

// Hand-written: the wire form is a map keyed by experiment id, which the
// vendored serde derive (structs and enums only) cannot express.
impl serde::Serialize for PerfTrajectory {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(
            self.points
                .iter()
                .map(|p| {
                    (
                        p.experiment.clone(),
                        serde::Value::Object(vec![
                            ("wall_ms".to_string(), serde::Value::Num(p.wall_ms)),
                            ("trees_grown".to_string(), serde::Value::Num(p.trees_grown as f64)),
                            ("cache_hit_rate".to_string(), serde::Value::Num(p.cache_hit_rate)),
                            ("queue_wait_p50".to_string(), serde::Value::Num(p.queue_wait_p50)),
                            ("queue_wait_p99".to_string(), serde::Value::Num(p.queue_wait_p99)),
                            ("rejection_rate".to_string(), serde::Value::Num(p.rejection_rate)),
                            ("net_p50_ms".to_string(), serde::Value::Num(p.net_p50_ms)),
                            ("net_p99_ms".to_string(), serde::Value::Num(p.net_p99_ms)),
                            ("net_p999_ms".to_string(), serde::Value::Num(p.net_p999_ms)),
                            (
                                "cache_hit_rate_region".to_string(),
                                serde::Value::Num(p.cache_hit_rate_region),
                            ),
                            (
                                "cache_hit_rate_rr".to_string(),
                                serde::Value::Num(p.cache_hit_rate_rr),
                            ),
                            (
                                "churn_hit_rate_surgical".to_string(),
                                serde::Value::Num(p.churn_hit_rate_surgical),
                            ),
                            (
                                "churn_hit_rate_dropall".to_string(),
                                serde::Value::Num(p.churn_hit_rate_dropall),
                            ),
                            (
                                "continent_settled_ratio".to_string(),
                                serde::Value::Num(p.continent_settled_ratio),
                            ),
                            (
                                "continent_ms_per_batch".to_string(),
                                serde::Value::Num(p.continent_ms_per_batch),
                            ),
                            (
                                "lint_unsafe_blocks".to_string(),
                                serde::Value::Num(p.lint_unsafe_blocks),
                            ),
                            (
                                "lint_allowed_sites".to_string(),
                                serde::Value::Num(p.lint_allowed_sites),
                            ),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

impl serde::Deserialize for PerfTrajectory {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let entries = match v {
            serde::Value::Object(e) => e,
            _ => return Err(serde::DeError::expected("object keyed by experiment id")),
        };
        let points = entries
            .iter()
            .map(|(experiment, fields)| {
                let fields = fields
                    .as_object()
                    .ok_or_else(|| serde::DeError::expected("object of perf fields"))?;
                // The gateway trio and the network trio are parsed
                // tolerantly (absent → 0) so trend tooling can still read
                // artifacts emitted before e16 / e17 existed.
                let optional = |name: &str| -> Result<f64, serde::DeError> {
                    Ok(Option::<f64>::from_value(serde::__field(fields, name))?.unwrap_or(0.0))
                };
                Ok(PerfPoint {
                    experiment: experiment.clone(),
                    wall_ms: serde::Deserialize::from_value(serde::__field(fields, "wall_ms"))?,
                    trees_grown: serde::Deserialize::from_value(serde::__field(
                        fields,
                        "trees_grown",
                    ))?,
                    cache_hit_rate: serde::Deserialize::from_value(serde::__field(
                        fields,
                        "cache_hit_rate",
                    ))?,
                    queue_wait_p50: optional("queue_wait_p50")?,
                    queue_wait_p99: optional("queue_wait_p99")?,
                    rejection_rate: optional("rejection_rate")?,
                    net_p50_ms: optional("net_p50_ms")?,
                    net_p99_ms: optional("net_p99_ms")?,
                    net_p999_ms: optional("net_p999_ms")?,
                    cache_hit_rate_region: optional("cache_hit_rate_region")?,
                    cache_hit_rate_rr: optional("cache_hit_rate_rr")?,
                    churn_hit_rate_surgical: optional("churn_hit_rate_surgical")?,
                    churn_hit_rate_dropall: optional("churn_hit_rate_dropall")?,
                    continent_settled_ratio: optional("continent_settled_ratio")?,
                    continent_ms_per_batch: optional("continent_ms_per_batch")?,
                    lint_unsafe_blocks: optional("lint_unsafe_blocks")?,
                    lint_allowed_sites: optional("lint_allowed_sites")?,
                })
            })
            .collect::<Result<Vec<_>, serde::DeError>>()?;
        Ok(PerfTrajectory { points })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(id: &str, metrics: &[(&str, f64)]) -> ExperimentTable {
        let mut t = ExperimentTable::new(id, "demo", "none", &["a"]);
        for (name, value) in metrics {
            t.metric(name, *value);
        }
        t
    }

    #[test]
    fn points_read_table_metrics_and_default_missing_ones_to_zero() {
        let full = table_with("E15", &[("trees_grown", 48.0), ("cache_hit_rate", 0.625)]);
        let p = PerfPoint::from_table(&full, 12.5);
        assert_eq!(p.experiment, "e15");
        assert_eq!(p.wall_ms, 12.5);
        assert_eq!(p.trees_grown, 48);
        assert_eq!(p.cache_hit_rate, 0.625);
        assert_eq!((p.queue_wait_p50, p.queue_wait_p99, p.rejection_rate), (0.0, 0.0, 0.0));
        assert_eq!((p.net_p50_ms, p.net_p99_ms, p.net_p999_ms), (0.0, 0.0, 0.0));
        assert_eq!((p.cache_hit_rate_region, p.cache_hit_rate_rr), (0.0, 0.0));
        assert_eq!((p.churn_hit_rate_surgical, p.churn_hit_rate_dropall), (0.0, 0.0));

        let bare = table_with("E13", &[]);
        let p = PerfPoint::from_table(&bare, 3.0);
        assert_eq!((p.trees_grown, p.cache_hit_rate), (0, 0.0));

        // The gateway latency trio flows through from table metrics.
        let gateway = table_with(
            "E16",
            &[("queue_wait_p50", 1.25), ("queue_wait_p99", 5.5), ("rejection_rate", 0.4)],
        );
        let p = PerfPoint::from_table(&gateway, 7.0);
        assert_eq!((p.queue_wait_p50, p.queue_wait_p99, p.rejection_rate), (1.25, 5.5, 0.4));

        // The network latency trio flows through from e17's metrics.
        let net =
            table_with("E17", &[("net_p50_ms", 2.0), ("net_p99_ms", 9.5), ("net_p999_ms", 40.0)]);
        let p = PerfPoint::from_table(&net, 11.0);
        assert_eq!((p.net_p50_ms, p.net_p99_ms, p.net_p999_ms), (2.0, 9.5, 40.0));

        // The placement pair flows through from e18's metrics.
        let placement =
            table_with("E18", &[("cache_hit_rate_region", 0.58), ("cache_hit_rate_rr", 0.26)]);
        let p = PerfPoint::from_table(&placement, 9.0);
        assert_eq!((p.cache_hit_rate_region, p.cache_hit_rate_rr), (0.58, 0.26));

        // The churn pair flows through from e19's metrics.
        let churn = table_with(
            "E19",
            &[("churn_hit_rate_surgical", 0.71), ("churn_hit_rate_dropall", 0.33)],
        );
        let p = PerfPoint::from_table(&churn, 8.0);
        assert_eq!((p.churn_hit_rate_surgical, p.churn_hit_rate_dropall), (0.71, 0.33));

        // The continent pair flows through from e20's metrics.
        let continent = table_with(
            "E20",
            &[("continent_settled_ratio", 0.21), ("continent_ms_per_batch", 120.5)],
        );
        let p = PerfPoint::from_table(&continent, 500.0);
        assert_eq!((p.continent_settled_ratio, p.continent_ms_per_batch), (0.21, 120.5));

        // The lint pair flows through from the lint pseudo-experiment.
        let lint = table_with("LINT", &[("lint_unsafe_blocks", 1.0), ("lint_allowed_sites", 11.0)]);
        let p = PerfPoint::from_table(&lint, 600.0);
        assert_eq!(p.experiment, "lint");
        assert_eq!((p.lint_unsafe_blocks, p.lint_allowed_sites), (1.0, 11.0));
    }

    #[test]
    fn pre_gateway_artifacts_still_deserialize() {
        // BENCH_4.json artifacts lack the gateway trio; tolerant parsing
        // reads them as 0 instead of failing the trend diff.
        let legacy = r#"{ "e15": { "wall_ms": 2.5, "trees_grown": 9, "cache_hit_rate": 0.5 } }"#;
        let traj: PerfTrajectory = serde_json::from_str(legacy).unwrap();
        assert_eq!(traj.points.len(), 1);
        assert_eq!(traj.points[0].trees_grown, 9);
        assert_eq!(traj.points[0].queue_wait_p99, 0.0);
        assert_eq!(traj.points[0].rejection_rate, 0.0);

        // BENCH_5.json artifacts carry the gateway trio but not the
        // network trio; those must parse too, with the net fields zero.
        let bench5 = r#"{ "e16": { "wall_ms": 4.0, "trees_grown": 0, "cache_hit_rate": 0.0,
                          "queue_wait_p50": 1.5, "queue_wait_p99": 5.0,
                          "rejection_rate": 0.3 } }"#;
        let traj: PerfTrajectory = serde_json::from_str(bench5).unwrap();
        assert_eq!(traj.points[0].queue_wait_p99, 5.0);
        assert_eq!(traj.points[0].net_p50_ms, 0.0);
        assert_eq!(traj.points[0].net_p999_ms, 0.0);

        // BENCH_6.json artifacts carry the network trio but not the
        // placement pair; those must parse too, with both rates zero.
        let bench6 = r#"{ "e17": { "wall_ms": 6.0, "trees_grown": 0, "cache_hit_rate": 0.0,
                          "queue_wait_p50": 0.0, "queue_wait_p99": 0.0, "rejection_rate": 0.0,
                          "net_p50_ms": 2.0, "net_p99_ms": 9.5, "net_p999_ms": 40.0 } }"#;
        let traj: PerfTrajectory = serde_json::from_str(bench6).unwrap();
        assert_eq!(traj.points[0].net_p99_ms, 9.5);
        assert_eq!(traj.points[0].cache_hit_rate_region, 0.0);
        assert_eq!(traj.points[0].cache_hit_rate_rr, 0.0);

        // BENCH_7.json artifacts carry the placement pair but not the
        // churn pair; those must parse too, with both churn rates zero.
        let bench7 = r#"{ "e18": { "wall_ms": 9.0, "trees_grown": 0, "cache_hit_rate": 0.0,
                          "queue_wait_p50": 0.0, "queue_wait_p99": 0.0, "rejection_rate": 0.0,
                          "net_p50_ms": 0.0, "net_p99_ms": 0.0, "net_p999_ms": 0.0,
                          "cache_hit_rate_region": 0.58, "cache_hit_rate_rr": 0.26 } }"#;
        let traj: PerfTrajectory = serde_json::from_str(bench7).unwrap();
        assert_eq!(traj.points[0].cache_hit_rate_region, 0.58);
        assert_eq!(traj.points[0].churn_hit_rate_surgical, 0.0);
        assert_eq!(traj.points[0].churn_hit_rate_dropall, 0.0);

        // BENCH_8.json artifacts carry the churn pair but not the
        // continent pair; those must parse too, with both fields zero.
        let bench8 = r#"{ "e19": { "wall_ms": 8.0, "trees_grown": 0, "cache_hit_rate": 0.0,
                          "queue_wait_p50": 0.0, "queue_wait_p99": 0.0, "rejection_rate": 0.0,
                          "net_p50_ms": 0.0, "net_p99_ms": 0.0, "net_p999_ms": 0.0,
                          "cache_hit_rate_region": 0.0, "cache_hit_rate_rr": 0.0,
                          "churn_hit_rate_surgical": 0.71, "churn_hit_rate_dropall": 0.33 } }"#;
        let traj: PerfTrajectory = serde_json::from_str(bench8).unwrap();
        assert_eq!(traj.points[0].churn_hit_rate_surgical, 0.71);
        assert_eq!(traj.points[0].continent_settled_ratio, 0.0);
        assert_eq!(traj.points[0].continent_ms_per_batch, 0.0);

        // BENCH_9.json artifacts carry the continent pair but not the
        // lint pair; those must parse too, with both counts zero.
        let bench9 = r#"{ "e20": { "wall_ms": 500.0, "trees_grown": 0, "cache_hit_rate": 0.0,
                          "queue_wait_p50": 0.0, "queue_wait_p99": 0.0, "rejection_rate": 0.0,
                          "net_p50_ms": 0.0, "net_p99_ms": 0.0, "net_p999_ms": 0.0,
                          "cache_hit_rate_region": 0.0, "cache_hit_rate_rr": 0.0,
                          "churn_hit_rate_surgical": 0.0, "churn_hit_rate_dropall": 0.0,
                          "continent_settled_ratio": 0.21, "continent_ms_per_batch": 120.5 } }"#;
        let traj: PerfTrajectory = serde_json::from_str(bench9).unwrap();
        assert_eq!(traj.points[0].continent_settled_ratio, 0.21);
        assert_eq!(traj.points[0].lint_unsafe_blocks, 0.0);
        assert_eq!(traj.points[0].lint_allowed_sites, 0.0);
    }

    #[test]
    fn trajectory_serializes_as_an_object_keyed_by_experiment() {
        let traj = PerfTrajectory {
            points: vec![
                PerfPoint {
                    experiment: "e13".to_string(),
                    wall_ms: 3.25,
                    trees_grown: 144,
                    cache_hit_rate: 0.0,
                    queue_wait_p50: 0.0,
                    queue_wait_p99: 0.0,
                    rejection_rate: 0.0,
                    net_p50_ms: 0.0,
                    net_p99_ms: 0.0,
                    net_p999_ms: 0.0,
                    cache_hit_rate_region: 0.0,
                    cache_hit_rate_rr: 0.0,
                    churn_hit_rate_surgical: 0.0,
                    churn_hit_rate_dropall: 0.0,
                    continent_settled_ratio: 0.0,
                    continent_ms_per_batch: 0.0,
                    lint_unsafe_blocks: 0.0,
                    lint_allowed_sites: 0.0,
                },
                PerfPoint {
                    experiment: "e15".to_string(),
                    wall_ms: 12.5,
                    trees_grown: 48,
                    cache_hit_rate: 0.625,
                    queue_wait_p50: 1.0,
                    queue_wait_p99: 4.5,
                    rejection_rate: 0.25,
                    net_p50_ms: 1.5,
                    net_p99_ms: 12.0,
                    net_p999_ms: 80.5,
                    cache_hit_rate_region: 0.58,
                    cache_hit_rate_rr: 0.26,
                    churn_hit_rate_surgical: 0.7,
                    churn_hit_rate_dropall: 0.3,
                    continent_settled_ratio: 0.2,
                    continent_ms_per_batch: 150.0,
                    lint_unsafe_blocks: 1.0,
                    lint_allowed_sites: 11.0,
                },
            ],
        };
        let json = traj.to_json();
        assert!(json.contains("\"e13\""), "{json}");
        assert!(json.contains("\"cache_hit_rate\""), "{json}");
        // Round-trips through the hand-written serde pair.
        let back: PerfTrajectory = serde_json::from_str(&json).unwrap();
        assert_eq!(back, traj);
        // And run order is preserved in the object.
        assert!(json.find("e13").unwrap() < json.find("e15").unwrap());
    }

    #[test]
    fn record_collapses_duplicate_experiment_ids_last_wins() {
        let mut traj = PerfTrajectory::default();
        let point = |wall_ms| PerfPoint {
            experiment: "e13".to_string(),
            wall_ms,
            trees_grown: 1,
            cache_hit_rate: 0.0,
            queue_wait_p50: 0.0,
            queue_wait_p99: 0.0,
            rejection_rate: 0.0,
            net_p50_ms: 0.0,
            net_p99_ms: 0.0,
            net_p999_ms: 0.0,
            cache_hit_rate_region: 0.0,
            cache_hit_rate_rr: 0.0,
            churn_hit_rate_surgical: 0.0,
            churn_hit_rate_dropall: 0.0,
            continent_settled_ratio: 0.0,
            continent_ms_per_batch: 0.0,
            lint_unsafe_blocks: 0.0,
            lint_allowed_sites: 0.0,
        };
        traj.record(point(1.0));
        traj.record(point(2.0));
        assert_eq!(traj.points.len(), 1, "duplicate ids must not emit duplicate JSON keys");
        assert_eq!(traj.points[0].wall_ms, 2.0, "last run wins");
        assert_eq!(traj.to_json().matches("\"e13\"").count(), 1);
    }

    #[test]
    fn empty_trajectory_is_an_empty_object() {
        let json = PerfTrajectory::default().to_json();
        let back: PerfTrajectory = serde_json::from_str(&json).unwrap();
        assert!(back.points.is_empty());
    }
}
