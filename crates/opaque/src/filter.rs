//! The candidate result path filter (§IV, Figure 6).
//!
//! The server answers an obfuscated query with candidate paths for *all*
//! `|S|×|T|` pairs. The filter — running inside the trusted obfuscator —
//! screens them, hands each client exactly the path answering its true
//! query, and discards the satisfied request ("for sake of security", §IV).
//!
//! The filter optionally re-verifies returned paths against the
//! obfuscator's own map, turning a tampering or map-skew problem into an
//! explicit [`OpaqueError::CorruptResult`] instead of a silently wrong
//! route. (The obfuscator's simple map lacks the server's live traffic
//! data, so verification uses edge existence and distance consistency, not
//! equality of the chosen route.)

use crate::error::{OpaqueError, Result};
use crate::obfuscator::ObfuscationUnit;
use crate::query::ClientId;
use pathsearch::{MsmdResult, Path};
use roadnet::RoadNetwork;

/// One delivered result: the client and the path answering its true query.
#[derive(Clone, Debug, PartialEq)]
pub struct ClientResult {
    /// The client the path is delivered to.
    pub client: ClientId,
    /// The shortest path answering the client's true query.
    pub path: Path,
}

/// Extract each carried request's true path from the candidate matrix.
///
/// `verify_on` enables defensive re-verification of every delivered path
/// against the given map.
///
/// # Errors
/// * [`OpaqueError::MissingResult`] — the candidate matrix has no path for
///   a client's pair (disconnected endpoints or a misbehaving server);
/// * [`OpaqueError::CorruptResult`] — a delivered path fails verification
///   (wrong endpoints, non-adjacent hops, or inconsistent distance).
pub fn filter_candidates(
    unit: &ObfuscationUnit,
    candidates: &MsmdResult,
    verify_on: Option<&RoadNetwork>,
) -> Result<Vec<ClientResult>> {
    let mut out = Vec::with_capacity(unit.requests.len());
    for request in &unit.requests {
        let path = extract_path(unit, request, candidates, verify_on)?.ok_or(
            OpaqueError::MissingResult {
                source: request.query.source,
                destination: request.query.destination,
            },
        )?;
        out.push(ClientResult { client: request.client, path });
    }
    Ok(out)
}

/// Extract one carried request's true path from the candidate matrix.
///
/// Returns `Ok(None)` when the candidate entry for the pair is absent —
/// i.e. the pair is disconnected on the backend's map. The service layer
/// turns that into a per-client `Unreachable` outcome; [`filter_candidates`]
/// keeps its historical all-or-error contract by mapping it to
/// [`OpaqueError::MissingResult`].
///
/// # Errors
/// * [`OpaqueError::MissingResult`] — the unit does not embed the request
///   at all (a malformed unit is an obfuscator bug);
/// * [`OpaqueError::CorruptResult`] — the candidate path has wrong
///   endpoints, or fails map verification when `verify_on` is set.
pub fn extract_path(
    unit: &ObfuscationUnit,
    request: &crate::query::ClientRequest,
    candidates: &MsmdResult,
    verify_on: Option<&RoadNetwork>,
) -> Result<Option<Path>> {
    let q = request.query;
    let (i, j) = match (unit.query.source_index(q.source), unit.query.target_index(q.destination)) {
        (Some(i), Some(j)) => (i, j),
        _ => {
            return Err(OpaqueError::MissingResult {
                source: q.source,
                destination: q.destination,
            });
        }
    };
    let Some(path) = candidates.paths[i][j].as_ref() else {
        return Ok(None);
    };
    let endpoints_ok = path.source() == q.source && path.destination() == q.destination;
    if !endpoints_ok {
        return Err(OpaqueError::CorruptResult { source: q.source, destination: q.destination });
    }
    if let Some(map) = verify_on {
        if !path.verify(map, 1e-6) {
            return Err(OpaqueError::CorruptResult {
                source: q.source,
                destination: q.destination,
            });
        }
    }
    Ok(Some(path.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obfuscator::{FakeSelection, Obfuscator};
    use crate::query::{ClientRequest, PathQuery, ProtectionSettings};
    use crate::server::DirectionsServer;
    use pathsearch::SharingPolicy;
    use roadnet::NodeId;
    use roadnet::generators::{GridConfig, grid_network};

    fn pipeline() -> (Obfuscator, DirectionsServer<roadnet::RoadNetwork>) {
        let map =
            grid_network(&GridConfig { width: 15, height: 15, seed: 4, ..Default::default() })
                .unwrap();
        let server = DirectionsServer::new(map.clone(), SharingPolicy::PerSource);
        (Obfuscator::new(map, FakeSelection::default_ring(), 7), server)
    }

    fn request(i: u32, s: u32, t: u32) -> ClientRequest {
        ClientRequest::new(
            ClientId(i),
            PathQuery::new(NodeId(s), NodeId(t)),
            ProtectionSettings::new(3, 3).unwrap(),
        )
    }

    #[test]
    fn filter_returns_exactly_the_true_paths() {
        let (mut ob, mut sv) = pipeline();
        let reqs = vec![request(0, 0, 224), request(1, 14, 210)];
        let unit = ob.obfuscate_shared(&reqs).unwrap();
        let candidates = sv.process(&unit.query);
        let results = filter_candidates(&unit, &candidates, Some(ob.map())).unwrap();
        assert_eq!(results.len(), 2);
        for (res, req) in results.iter().zip(&reqs) {
            assert_eq!(res.client, req.client);
            assert_eq!(res.path.source(), req.query.source);
            assert_eq!(res.path.destination(), req.query.destination);
            // And the delivered path is genuinely shortest.
            let direct =
                pathsearch::shortest_path(ob.map(), req.query.source, req.query.destination)
                    .unwrap();
            assert!((res.path.distance() - direct.distance()).abs() < 1e-9);
        }
    }

    #[test]
    fn missing_candidate_is_reported() {
        let (mut ob, mut sv) = pipeline();
        let reqs = vec![request(0, 0, 224)];
        let unit = ob.obfuscate_shared(&reqs).unwrap();
        let mut candidates = sv.process(&unit.query);
        // Sabotage: drop the true pair's path.
        let i = unit.query.source_index(NodeId(0)).unwrap();
        let j = unit.query.target_index(NodeId(224)).unwrap();
        candidates.paths[i][j] = None;
        let err = filter_candidates(&unit, &candidates, None).unwrap_err();
        assert!(matches!(err, OpaqueError::MissingResult { .. }));
    }

    #[test]
    fn tampered_path_is_caught_by_verification() {
        let (mut ob, mut sv) = pipeline();
        let reqs = vec![request(0, 0, 224)];
        let unit = ob.obfuscate_shared(&reqs).unwrap();
        let mut candidates = sv.process(&unit.query);
        let i = unit.query.source_index(NodeId(0)).unwrap();
        let j = unit.query.target_index(NodeId(224)).unwrap();
        // Inflate the reported distance: endpoints still match, so only
        // map verification can catch it.
        let original = candidates.paths[i][j].as_ref().unwrap();
        let tampered = Path::new(original.nodes().to_vec(), original.distance() + 100.0);
        candidates.paths[i][j] = Some(tampered);
        assert!(filter_candidates(&unit, &candidates, None).is_ok(), "no verify → accepted");
        let err = filter_candidates(&unit, &candidates, Some(ob.map())).unwrap_err();
        assert!(matches!(err, OpaqueError::CorruptResult { .. }));
    }

    #[test]
    fn wrong_endpoints_are_caught_without_verification() {
        let (mut ob, mut sv) = pipeline();
        let reqs = vec![request(0, 0, 224)];
        let unit = ob.obfuscate_shared(&reqs).unwrap();
        let mut candidates = sv.process(&unit.query);
        let i = unit.query.source_index(NodeId(0)).unwrap();
        let j = unit.query.target_index(NodeId(224)).unwrap();
        candidates.paths[i][j] = Some(Path::trivial(NodeId(3)));
        let err = filter_candidates(&unit, &candidates, None).unwrap_err();
        assert!(matches!(err, OpaqueError::CorruptResult { .. }));
    }
}
