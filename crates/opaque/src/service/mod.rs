//! The OPAQUE service layer: the deployable face of the Figure-5 pipeline.
//!
//! The rest of this crate reproduces the paper's components — obfuscator,
//! server, filter — as library pieces. This module assembles them into a
//! *service* with explicit protocol boundaries, the shape production
//! privacy systems take (cf. Wu et al.'s and Mouratidis & Yiu's
//! client/server framings) and the shape the roadmap's scaling work needs:
//!
//! * [`DirectionsBackend`] — the pluggable server side: a single
//!   [`crate::server::DirectionsServer`] over any graph view, or a
//!   round-robin [`ShardedBackend`] fleet;
//! * [`Batcher`] / [`gateway`] — the admission path: streamed requests
//!   enter through [`OpaqueService::submit`], which answers with a typed
//!   [`SubmitOutcome`] under a configured [`AdmissionPolicy`] (bounded
//!   queue depth, per-request deadline, [`Priority`] lanes with
//!   interactive draining first); pending batches drain on size or
//!   deadline triggers into an ordered [`ServiceEvent`] stream — one
//!   per-client delivery event per request (the paper's hop 4), a
//!   trailing [`BatchFlushed`](ServiceEvent::BatchFlushed) report, and
//!   explicit cancellation via [`OpaqueService::cancel`];
//! * [`parallel`] / [`ExecutionPolicy`] — the execution layer: obfuscated
//!   queries of a batch run sequentially or across a worker pool with one
//!   pinned search arena per worker, with the guarantee (proven by the
//!   equivalence proptest) that parallelism never changes a single answer
//!   or report byte;
//! * [`cache`] / [`CachePolicy`] — the shard-local shortest-path-tree
//!   cache: recorded Dijkstra sweeps adopted instead of regrown when a
//!   query's root recurs, under the same guarantee (`Lru` is
//!   byte-identical to `Off` in every report — `tests/cache_equivalence.rs`);
//! * [`partition`] / [`PartitionPolicy`] — the placement layer: region-owned
//!   shards route each unit to the shard owning its obfuscation region
//!   (halo fallback → any-owner fallback), clustering cache roots per
//!   shard while staying report-byte-identical to round-robin
//!   (`tests/partition_equivalence.rs`);
//! * [`OpaqueService`] — the assembled deployment, built from a typed
//!   [`ServiceBuilder`] / [`ServiceConfig`];
//! * [`BatchReport`] / [`ClientOutcome`] — typed accounting: serde-tagged
//!   obfuscation modes and an explicit per-client outcome (delivered /
//!   unreachable / rejected) instead of silent drops.

mod backend;
mod batcher;
mod builder;
pub mod cache;
pub mod gateway;
pub mod heuristic;
pub mod parallel;
pub mod partition;
mod report;

pub use backend::{DirectionsBackend, ShardedBackend};
pub use batcher::{BatchPolicy, Batcher, DrainedBatch, ExpiredRequest, Ticket};
pub use builder::{DefaultBackend, ServiceBuilder, ServiceConfig};
pub use cache::{CachePolicy, TreeCache};
pub use gateway::{AdmissionPolicy, Priority, RejectReason, ServiceEvent, SubmitOutcome};
pub use heuristic::SearchHeuristic;
pub use parallel::ExecutionPolicy;
pub use partition::{Partition, PartitionPolicy, RouteKind};
pub use report::{BatchReport, ClientOutcome};

use crate::error::{OpaqueError, Result};
use crate::filter::{ClientResult, extract_path};
use crate::obfuscator::{ObfuscationMode, ObfuscationUnit, Obfuscator, cluster_requests};
use crate::protocol::{CandidateResultsMsg, ObfuscatedQueryMsg, RequestMsg, ResultMsg};
use crate::query::{ClientId, ClientRequest, ObfuscatedPathQuery};
use roadnet::NodeId;
use std::collections::{HashMap, HashSet};

/// Everything a processed batch produced: delivered paths, one outcome per
/// request of the processed batch (in request order, including requests
/// rejected at admission), and the batch's [`BatchReport`].
///
/// This is the *legacy batch view* — the output of the direct
/// [`OpaqueService::process_batch`] path. Queue-driven processing
/// ([`OpaqueService::tick`] / [`OpaqueService::flush`]) emits the same
/// information as an ordered [`ServiceEvent`] stream instead, with the
/// same [`BatchReport`] bytes trailing each window
/// (`tests/gateway_equivalence.rs` holds the two views byte-identical).
#[derive(Clone, Debug)]
pub struct ServiceResponse {
    /// Delivered paths, in request order. Clients with a non-`Delivered`
    /// outcome do not appear here.
    pub results: Vec<ClientResult>,
    /// `outcomes[i]` describes `requests[i]` of the processed batch.
    pub outcomes: Vec<(ClientId, ClientOutcome)>,
    /// Aggregate accounting for the batch.
    pub report: BatchReport,
}

/// The assembled OPAQUE deployment: trusted obfuscator, pluggable
/// directions backend, admission queue, and a configured obfuscation mode.
///
/// Built via [`ServiceBuilder`]; or from pre-assembled parts with
/// [`OpaqueService::from_parts`] when a custom backend or obfuscator is
/// needed.
pub struct OpaqueService<B> {
    obfuscator: Obfuscator,
    backend: B,
    mode: ObfuscationMode,
    batcher: Batcher,
    /// Re-verify delivered paths against the obfuscator's map, turning
    /// tampering into [`OpaqueError::CorruptResult`].
    pub verify_results: bool,
    /// Strict delivery (the original all-or-error pipeline contract):
    /// any unreachable pair or invalid request fails the whole
    /// batch with an error. When `false` (the service default), such
    /// requests get per-client [`ClientOutcome::Unreachable`] /
    /// [`ClientOutcome::Rejected`] outcomes and the rest of the batch is
    /// still served.
    pub strict_delivery: bool,
    /// How each batch's obfuscated queries are executed against the
    /// backend: sequentially (the default) or fanned out across a worker
    /// pool of pinned shards — with byte-identical results and reports
    /// either way (the determinism harness's guarantee).
    pub execution: ExecutionPolicy,
}

impl<B> std::fmt::Debug for OpaqueService<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpaqueService")
            .field("mode", &self.mode)
            .field("pending", &self.batcher.len())
            .field("verify_results", &self.verify_results)
            .field("strict_delivery", &self.strict_delivery)
            .field("execution", &self.execution)
            .finish_non_exhaustive()
    }
}

impl<B: DirectionsBackend> OpaqueService<B> {
    /// Assemble a service from pre-built parts with the default batch
    /// policy.
    pub fn from_parts(obfuscator: Obfuscator, backend: B, mode: ObfuscationMode) -> Self {
        OpaqueService {
            obfuscator,
            backend,
            mode,
            batcher: Batcher::new(BatchPolicy::default(), AdmissionPolicy::default())
                // lint: allow(panic-path) — construction-time, not the
                // submit/tick path, and the default policies are
                // compile-time constants whose validity is pinned by
                // the batcher's own tests.
                .expect("default policies are valid"),
            verify_results: false,
            strict_delivery: false,
            execution: ExecutionPolicy::Sequential,
        }
    }

    /// Replace the queue's flush policy in place. Safe on a live queue:
    /// pending requests and issued tickets are untouched, and the new
    /// triggers apply from the next [`OpaqueService::tick`].
    ///
    /// # Errors
    /// [`OpaqueError::InvalidConfig`] when the policy is unsatisfiable.
    pub fn set_batch_policy(&mut self, policy: BatchPolicy) -> Result<()> {
        self.batcher.set_policy(policy)
    }

    /// Replace the gateway's admission policy in place (see
    /// [`Batcher::set_admission`] for the live-queue semantics).
    ///
    /// # Errors
    /// [`OpaqueError::InvalidConfig`] when the policy is unsatisfiable.
    pub fn set_admission_policy(&mut self, admission: AdmissionPolicy) -> Result<()> {
        self.batcher.set_admission(admission)
    }

    /// The trusted obfuscator (e.g. to inspect its map).
    pub fn obfuscator(&self) -> &Obfuscator {
        &self.obfuscator
    }

    /// The directions backend (e.g. to read cumulative stats).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The configured obfuscation mode.
    pub fn mode(&self) -> ObfuscationMode {
        self.mode
    }

    /// Check the obfuscator's trust-domain map copy agrees edge-for-edge
    /// with `serving` — the lockstep invariant behind result verification
    /// (`verify_results` re-walks delivered paths against the obfuscator's
    /// copy, so any drift would reject honest answers).
    fn maps_in_lockstep(obfuscator: &Obfuscator, serving: &roadnet::RoadNetwork) -> bool {
        obfuscator.map().num_nodes() == serving.num_nodes()
            && obfuscator.map().edges() == serving.edges()
    }

    /// Number of requests waiting in the admission queue (both lanes plus
    /// deferred duplicates).
    pub fn pending(&self) -> usize {
        self.batcher.len()
    }

    /// Clock at which the queue's deadline trigger fires (`None` when
    /// empty) — see [`Batcher::next_deadline`].
    pub fn next_deadline(&self) -> Option<f64> {
        self.batcher.next_deadline()
    }

    /// Submit one request at clock `now` in the [`Priority::Interactive`]
    /// lane; see [`OpaqueService::submit_with_priority`].
    pub fn submit(&mut self, request: ClientRequest, now: f64) -> SubmitOutcome {
        self.submit_with_priority(request, Priority::Interactive, now)
    }

    /// Submit one request at clock `now` in the given lane.
    ///
    /// Never fails — every admission verdict is a typed
    /// [`SubmitOutcome`]: accepted into the current window, deferred to
    /// the next one (the client already has a pending request —
    /// duplicates no longer fail the submit), or rejected at the door
    /// (queue full, malformed protection) with no ticket issued.
    pub fn submit_with_priority(
        &mut self,
        request: ClientRequest,
        priority: Priority,
        now: f64,
    ) -> SubmitOutcome {
        self.batcher.submit(request, priority, now)
    }

    /// Cancel a queued request before its window flushes. `true` when the
    /// ticket was still queued — the request leaves the queue immediately
    /// and the next [`OpaqueService::tick`] / [`OpaqueService::flush`]
    /// acknowledges it with a [`ServiceEvent::Cancelled`]; `false` when
    /// the ticket is unknown or its batch already drained (cancellation
    /// after the fact is impossible: satisfied requests are discarded,
    /// §IV).
    pub fn cancel(&mut self, ticket: Ticket) -> bool {
        self.batcher.cancel(ticket).is_some()
    }

    /// Advance the clock and emit the gateway's events: pending
    /// [`ServiceEvent::Cancelled`] acknowledgements, then deadline
    /// sheddings ([`ServiceEvent::Rejected`] with
    /// [`RejectReason::DeadlineExpired`]), then — if a flush trigger
    /// (size or deadline) has fired — one terminal event per request of
    /// the drained batch in batch order, closed by a
    /// [`ServiceEvent::BatchFlushed`]. Empty when nothing happened.
    ///
    /// On a processing error the drained requests are *not* re-queued
    /// (re-queueing would re-trigger the same failure on every tick) and
    /// the caller sees the error; the cancellation/shedding
    /// acknowledgements collected for the discarded event list are
    /// restored to the queue's ledgers and re-emitted by the next tick —
    /// they are unrelated to the failed batch, and every ticket must
    /// still resolve exactly once.
    pub fn tick(&mut self, now: f64) -> Result<Vec<ServiceEvent>> {
        // Acks and expiry first: an overdue request must be shed, never
        // drained into the batch.
        let cancelled = self.batcher.take_cancelled();
        let shed = self.batcher.expire(now);
        let batch = self.batcher.tick(now);
        self.emit(cancelled, shed, batch, now)
    }

    /// Drain and process one pending window at clock `now`, regardless of
    /// triggers (e.g. at shutdown), emitting events exactly like
    /// [`OpaqueService::tick`]. Deferred duplicates join the *next*
    /// window, so a full shutdown drain loops until
    /// [`OpaqueService::pending`] reaches zero.
    pub fn flush(&mut self, now: f64) -> Result<Vec<ServiceEvent>> {
        let cancelled = self.batcher.take_cancelled();
        let shed = self.batcher.expire(now);
        let batch = self.batcher.flush();
        self.emit(cancelled, shed, batch, now)
    }

    /// Build one tick's event list: cancellation acknowledgements, then
    /// deadline sheddings, then the drained window's events (if any). On
    /// a batch failure the acknowledgements are restored for the next
    /// tick before the error propagates.
    fn emit(
        &mut self,
        cancelled: Vec<(Ticket, ClientId)>,
        shed: Vec<batcher::ExpiredRequest>,
        batch: Option<DrainedBatch>,
        now: f64,
    ) -> Result<Vec<ServiceEvent>> {
        let mut events: Vec<ServiceEvent> = cancelled
            .iter()
            .map(|&(ticket, client)| ServiceEvent::Cancelled { ticket, client })
            .collect();
        for e in &shed {
            events.push(ServiceEvent::Rejected {
                ticket: e.ticket,
                client: e.client,
                reason: RejectReason::DeadlineExpired { waited: e.waited },
                waited: e.waited,
            });
        }
        if let Some(batch) = batch {
            if let Err(error) = self.batch_events(&mut events, batch, now) {
                self.batcher.restore_acks(cancelled, shed);
                return Err(error);
            }
        }
        Ok(events)
    }

    /// Process one drained window and append its per-request events (in
    /// batch request order) plus the trailing
    /// [`ServiceEvent::BatchFlushed`].
    fn batch_events(
        &mut self,
        events: &mut Vec<ServiceEvent>,
        batch: DrainedBatch,
        now: f64,
    ) -> Result<()> {
        let response = self.process_batch(&batch.requests)?;
        let mut path_by_client: HashMap<ClientId, pathsearch::Path> =
            response.results.into_iter().map(|r| (r.client, r.path)).collect();
        // tickets / arrivals / outcomes are parallel by construction
        // (one entry per drained request, same order); zip keeps the
        // pairing panic-free even if that invariant ever breaks.
        for ((client, outcome), (&ticket, &arrival)) in
            response.outcomes.iter().zip(batch.tickets.iter().zip(&batch.arrivals))
        {
            let waited = now - arrival;
            events.push(match outcome {
                // A Delivered outcome always carries a path (process_batch
                // records both from the same extraction); if that pairing
                // ever broke, degrading to Unreachable keeps the ticket
                // accounted without putting an abort on the tick path.
                ClientOutcome::Delivered => match path_by_client.remove(client) {
                    Some(path) => ServiceEvent::ResponseReady {
                        ticket,
                        client: *client,
                        result: ResultMsg { client: *client, path },
                        waited,
                    },
                    None => ServiceEvent::Unreachable { ticket, client: *client, waited },
                },
                ClientOutcome::Unreachable => {
                    ServiceEvent::Unreachable { ticket, client: *client, waited }
                }
                ClientOutcome::Rejected { reason } => ServiceEvent::Rejected {
                    ticket,
                    client: *client,
                    reason: RejectReason::Infeasible { reason: reason.clone() },
                    waited,
                },
            });
        }
        events.push(ServiceEvent::BatchFlushed(response.report));
        Ok(())
    }

    /// Process one batch end to end under the configured mode.
    pub fn process_batch(&mut self, requests: &[ClientRequest]) -> Result<ServiceResponse> {
        self.process_batch_with_mode(requests, self.mode)
    }

    /// Process one batch end to end under an explicit mode.
    ///
    /// Satisfied requests are *not* retained anywhere in the service (§IV:
    /// "the satisfied requests are immediately discarded in the
    /// obfuscator, for sake of security") — only the aggregate
    /// [`BatchReport`] survives.
    ///
    /// # Errors
    /// * [`OpaqueError::EmptyBatch`] — no requests;
    /// * [`OpaqueError::DuplicateClient`] — two requests of this directly
    ///   handed batch share a [`ClientId`] (result routing would be
    ///   ambiguous and there is no later window to defer to; the
    ///   queue-driven path never produces such a batch — duplicates are
    ///   deferred at [`OpaqueService::submit`]);
    /// * [`OpaqueError::CorruptResult`] — a backend answer failed
    ///   verification (always fatal: it indicates tampering);
    /// * in strict mode only: [`OpaqueError::MissingResult`],
    ///   [`OpaqueError::NotEnoughFakes`], and the request-validation
    ///   errors, instead of per-client outcomes. In service mode every
    ///   feasibility failure — including strategy-level and collective
    ///   shared-group infeasibility — is attributed to individual clients
    ///   as [`ClientOutcome::Rejected`] (see
    ///   `reject_infeasible_members`).
    pub fn process_batch_with_mode(
        &mut self,
        requests: &[ClientRequest],
        mode: ObfuscationMode,
    ) -> Result<ServiceResponse> {
        if requests.is_empty() {
            return Err(OpaqueError::EmptyBatch);
        }

        // Admission: duplicate client ids make result routing ambiguous
        // (the order-restore and delivery maps key on ClientId).
        let mut seen: HashSet<ClientId> = HashSet::with_capacity(requests.len());
        for r in requests {
            if !seen.insert(r.client) {
                return Err(OpaqueError::DuplicateClient { client: r.client });
            }
        }

        let mut report =
            BatchReport { mode, num_requests: requests.len(), ..BatchReport::default() };
        for r in requests {
            report.traffic.record_request(&RequestMsg {
                client: r.client,
                query: r.query,
                protection: r.protection,
            });
        }

        // Admission validation: in service mode invalid requests become
        // `Rejected` outcomes and the rest proceed; in strict mode the
        // first invalid request fails the batch (historical contract).
        let mut outcomes: Vec<(ClientId, ClientOutcome)> = Vec::with_capacity(requests.len());
        let mut admitted: Vec<ClientRequest> = Vec::with_capacity(requests.len());
        for r in requests {
            // Service mode screens full count-level feasibility so one
            // greedy client cannot fail the whole batch during
            // obfuscation; strict mode only validates the request shape
            // and leaves infeasibility to the obfuscator, which reports
            // the historical batch-level NotEnoughFakes.
            let verdict = if self.strict_delivery {
                self.obfuscator.check_request(r)
            } else {
                self.obfuscator.can_satisfy(r)
            };
            match verdict {
                Ok(()) => {
                    // Placeholder; refined after delivery below.
                    outcomes.push((r.client, ClientOutcome::Delivered));
                    admitted.push(*r);
                }
                Err(e) if self.strict_delivery => return Err(e),
                Err(e) => {
                    outcomes.push((r.client, ClientOutcome::Rejected { reason: e.to_string() }));
                }
            }
        }

        let outcome_slot: HashMap<ClientId, usize> =
            outcomes.iter().enumerate().map(|(i, (c, _))| (*c, i)).collect();

        let mut results: Vec<ClientResult> = Vec::with_capacity(admitted.len());
        if !admitted.is_empty() {
            let before = self.backend.stats();
            let units = self.obfuscate_admitted(&admitted, mode, &mut outcomes, &outcome_slot)?;
            report.num_units = units.len();

            // Execution: every unit is answered before any accounting, so
            // the backend may evaluate them in any order (worker pool) or
            // in unit order (sequential) — the accounting loop below
            // always runs in unit order either way, which is what makes
            // the two execution policies byte-identical in every report.
            let unit_queries: Vec<ObfuscatedPathQuery> =
                units.iter().map(|u| u.query.clone()).collect();
            let answers = self.backend.process_many(&unit_queries, self.execution);
            // Hard contract, not a debug check: a backend returning the
            // wrong count would otherwise be silently truncated by the
            // zip below, leaving clients with placeholder Delivered
            // outcomes and no result.
            assert_eq!(
                answers.len(),
                units.len(),
                "backend process_many must answer every query exactly once"
            );

            for ((query_id, unit), candidates) in units.iter().enumerate().zip(&answers) {
                report.total_pairs += unit.query.num_pairs() as u64;
                report.fakes_added += count_fakes(unit);
                report.traffic.record_query(&ObfuscatedQueryMsg {
                    query_id: query_id as u64,
                    query: unit.query.clone(),
                });

                report.candidate_paths += candidates.num_paths() as u64;
                report.candidate_path_nodes += candidates
                    .paths
                    .iter()
                    .flatten()
                    .flatten()
                    .map(|p| p.nodes().len() as u64)
                    .sum::<u64>();
                report.traffic.record_candidates(&CandidateResultsMsg::from_result(
                    query_id as u64,
                    candidates,
                ));

                let verify_on = self.verify_results.then(|| self.obfuscator.map());
                for request in &unit.requests {
                    // Embedded clients are exposed whether or not a path
                    // comes back: record the unit's breach either way.
                    report
                        .per_client_breach
                        .push((request.client, unit.query.breach_probability()));
                    match extract_path(unit, request, candidates, verify_on)? {
                        Some(path) => {
                            report.delivered_path_nodes += path.nodes().len() as u64;
                            report.traffic.record_result(&ResultMsg {
                                client: request.client,
                                path: path.clone(),
                            });
                            results.push(ClientResult { client: request.client, path });
                        }
                        None if self.strict_delivery => {
                            return Err(OpaqueError::MissingResult {
                                source: request.query.source,
                                destination: request.query.destination,
                            });
                        }
                        None => {
                            set_outcome(
                                &mut outcomes,
                                &outcome_slot,
                                request.client,
                                ClientOutcome::Unreachable,
                            );
                        }
                    }
                }
            }

            // Per-batch server cost: the fleet counters are cumulative
            // (shards are never reset between batches), so the report
            // carries the delta across this batch only — pinned by the
            // per-batch accounting tests against both execution policies.
            let after = self.backend.stats();
            let delta = after.delta_since(&before);
            report.server_settled = delta.search.settled;
            report.server_relaxed = delta.search.relaxed;
            report.server_trees_grown = delta.trees_grown;
            report.tree_cache_hits = delta.tree_cache_hits;
            report.tree_cache_misses = delta.tree_cache_misses;
        }

        // Restore request order for the caller. `outcome_slot` maps each
        // client to its request position (outcomes were pushed once per
        // request, in order; ids are unique past admission).
        results.sort_by_key(|r| outcome_slot.get(&r.client).copied().unwrap_or(usize::MAX));
        report
            .per_client_breach
            .sort_by_key(|(c, _)| outcome_slot.get(c).copied().unwrap_or(usize::MAX));

        Ok(ServiceResponse { results, outcomes, report })
    }

    /// Obfuscate the admitted requests, attributing
    /// [`OpaqueError::NotEnoughFakes`] failures to individual clients in
    /// service mode.
    ///
    /// The count screen at admission cannot see strategy constraints —
    /// e.g. [`crate::obfuscator::FakeSelection::NetworkRing`] on a
    /// disconnected map can only draw fakes from the anchor's component —
    /// nor *collective* infeasibility, where a shared group's maximum
    /// `f_S`/`f_T` demands jointly exceed the map. In service mode both
    /// become per-client [`ClientOutcome::Rejected`] outcomes (see
    /// `reject_infeasible_members`), attributed within
    /// the failing shared group — for [`ObfuscationMode::SharedClustered`]
    /// that is the individual cluster, so clients in healthy clusters are
    /// never blamed for another cluster's infeasibility. Strict mode
    /// propagates the obfuscator's first error untouched (historical
    /// contract). Failure handling draws probe samples from the
    /// obfuscator's RNG, so lenient-mode streams diverge from strict-mode
    /// ones after a rejection (the all-feasible path is identical).
    fn obfuscate_admitted(
        &mut self,
        admitted: &[ClientRequest],
        mode: ObfuscationMode,
        outcomes: &mut [(ClientId, ClientOutcome)],
        outcome_slot: &HashMap<ClientId, usize>,
    ) -> Result<Vec<ObfuscationUnit>> {
        if self.strict_delivery {
            return self.obfuscator.obfuscate_batch(admitted, mode);
        }
        match mode {
            ObfuscationMode::Independent => {
                // Per-request obfuscation: failures are individually
                // attributable by construction.
                let mut units = Vec::with_capacity(admitted.len());
                for r in admitted {
                    match self.obfuscator.obfuscate_independent(r) {
                        Ok(unit) => units.push(unit),
                        Err(e @ OpaqueError::NotEnoughFakes { .. }) => {
                            set_outcome(
                                outcomes,
                                outcome_slot,
                                r.client,
                                ClientOutcome::Rejected { reason: e.to_string() },
                            );
                        }
                        Err(e) => return Err(e),
                    }
                }
                Ok(units)
            }
            ObfuscationMode::SharedGlobal => {
                let group = admitted.to_vec();
                Ok(self
                    .obfuscate_shared_group(group, outcomes, outcome_slot)?
                    .into_iter()
                    .collect())
            }
            ObfuscationMode::SharedClustered(cfg) => {
                // Mirror obfuscate_batch's clustering exactly (same
                // partition, same order), but retry each cluster on its
                // own so infeasibility stays cluster-local.
                let clusters = cluster_requests(self.obfuscator.map(), admitted, &cfg);
                let mut units = Vec::with_capacity(clusters.len());
                for cluster in clusters {
                    let members: Vec<ClientRequest> =
                        cluster.members.iter().filter_map(|&i| admitted.get(i).copied()).collect();
                    if let Some(unit) =
                        self.obfuscate_shared_group(members, outcomes, outcome_slot)?
                    {
                        units.push(unit);
                    }
                }
                Ok(units)
            }
        }
    }

    /// Obfuscate one shared group, rejecting infeasible members until the
    /// rest succeed (`None` when every member had to be rejected).
    ///
    /// On [`OpaqueError::NotEnoughFakes`]: members that fail an
    /// *individual* obfuscation probe are rejected first (strategy-level
    /// infeasibility, e.g. a disconnected island). If all members are
    /// individually fine, the infeasibility is collective — a shared query
    /// must meet the group's maximum `f_S` and `f_T` at once, demanded
    /// possibly by different members — so the member whose removal shrinks
    /// `max f_S + max f_T` the most (a holder of a binding max, not merely
    /// the largest sum) is rejected, and the group retried.
    fn reject_infeasible_members(
        &mut self,
        members: &mut Vec<ClientRequest>,
        cause: &OpaqueError,
        outcomes: &mut [(ClientId, ClientOutcome)],
        outcome_slot: &HashMap<ClientId, usize>,
    ) {
        let mut culprits: HashSet<ClientId> = HashSet::new();
        for r in members.iter() {
            if let Err(probe) = self.obfuscator.obfuscate_independent(r) {
                culprits.insert(r.client);
                set_outcome(
                    outcomes,
                    outcome_slot,
                    r.client,
                    ClientOutcome::Rejected { reason: probe.to_string() },
                );
            }
        }
        if !culprits.is_empty() {
            members.retain(|r| !culprits.contains(&r.client));
            return;
        }
        let joint_without = |skip: usize| {
            let mut max_s = 0u32;
            let mut max_t = 0u32;
            for (j, r) in members.iter().enumerate() {
                if j != skip {
                    max_s = max_s.max(r.protection.f_s);
                    max_t = max_t.max(r.protection.f_t);
                }
            }
            max_s as u64 + max_t as u64
        };
        let Some(binding) = (0..members.len()).min_by_key(|&i| joint_without(i)) else {
            return; // no members left: the caller's loop terminates on empty
        };
        let evicted = members.remove(binding);
        set_outcome(
            outcomes,
            outcome_slot,
            evicted.client,
            ClientOutcome::Rejected {
                reason: format!(
                    "{cause} (group protections jointly unsatisfiable; this request's \
                     demand bound the shared query size)"
                ),
            },
        );
    }

    /// See `reject_infeasible_members`; the driving loop.
    fn obfuscate_shared_group(
        &mut self,
        mut members: Vec<ClientRequest>,
        outcomes: &mut [(ClientId, ClientOutcome)],
        outcome_slot: &HashMap<ClientId, usize>,
    ) -> Result<Option<ObfuscationUnit>> {
        loop {
            if members.is_empty() {
                return Ok(None);
            }
            match self.obfuscator.obfuscate_shared(&members) {
                Ok(unit) => return Ok(Some(unit)),
                Err(e @ OpaqueError::NotEnoughFakes { .. }) => {
                    self.reject_infeasible_members(&mut members, &e, outcomes, outcome_slot);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Live-map maintenance for the standard deployment shape assembled by
/// [`ServiceBuilder`] — a shard fleet sharing one map. The service owns
/// *two* trust-domain map copies (the obfuscator's and the fleet's), and
/// these entry points are the only place both move together; updating one
/// side by hand would break the lockstep that `verify_results` depends on.
impl OpaqueService<DefaultBackend> {
    /// Apply live-traffic weight updates to both trust domains: the shard
    /// fleet (which surgically invalidates only the cached trees touching
    /// a changed edge — [`ShardedBackend::update_weights`]) and the
    /// obfuscator's own copy (so result verification keeps accepting
    /// honest answers). Returns the edges whose weight actually changed.
    ///
    /// This is the gateway entry point for the rush-hour regime: traffic
    /// ticks every few seconds must not re-cool the whole fleet cache the
    /// way a topology swap ([`OpaqueService::swap_map`]) deliberately
    /// does.
    ///
    /// # Errors
    /// Propagates [`roadnet::RoadNetError`] for an unknown edge id or
    /// invalid weight; neither map is touched on error.
    pub fn update_weights(
        &mut self,
        updates: &[(roadnet::EdgeId, f64)],
    ) -> std::result::Result<Vec<roadnet::EdgeId>, roadnet::RoadNetError> {
        let changed = self.backend.update_weights(updates)?;
        // Same topology, same validation rules: a batch the fleet accepted
        // cannot fail on the obfuscator's identical copy.
        let also = self.obfuscator.update_weights(updates)?;
        debug_assert_eq!(changed, also);
        // lint: allow(panic-path) — inside debug_assert!, compiled out
        // of release builds, and shards() is non-empty by
        // ServiceBuilder construction.
        debug_assert!(Self::maps_in_lockstep(&self.obfuscator, self.backend.shards()[0].graph()));
        Ok(changed)
    }

    /// Replace the map in both trust domains — the topology-change path.
    /// The fleet bumps its epoch and drops every cached tree; the
    /// obfuscator rebuilds its spatial index and clears its consistency
    /// memo. Use [`OpaqueService::update_weights`] for traffic.
    pub fn swap_map(&mut self, map: roadnet::RoadNetwork) {
        self.obfuscator.swap_map(map.clone());
        self.backend.swap_map(map);
    }
}

/// Record a terminal outcome for `client` in its reserved slot. Every
/// admitted client has a slot by construction (the slot map is built
/// from the same admitted list), so the lookups cannot miss — but the
/// batch path must degrade, not abort, if that invariant ever breaks,
/// so an unknown id is simply a no-op.
fn set_outcome(
    outcomes: &mut [(ClientId, ClientOutcome)],
    outcome_slot: &HashMap<ClientId, usize>,
    client: ClientId,
    outcome: ClientOutcome,
) {
    if let Some(entry) = outcome_slot.get(&client).and_then(|&slot| outcomes.get_mut(slot)) {
        entry.1 = outcome;
    }
}

/// Number of endpoints in the unit's sets that are not true endpoints of
/// any carried request.
pub(crate) fn count_fakes(unit: &ObfuscationUnit) -> u64 {
    let truth: HashSet<NodeId> =
        unit.requests.iter().flat_map(|r| [r.query.source, r.query.destination]).collect();
    let fake_sources = unit.query.sources().iter().filter(|s| !truth.contains(s)).count();
    let fake_targets = unit.query.targets().iter().filter(|t| !truth.contains(t)).count();
    (fake_sources + fake_targets) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obfuscator::{ClusteringConfig, FakeSelection};
    use crate::query::{PathQuery, ProtectionSettings};
    use crate::server::DirectionsServer;
    use pathsearch::SharingPolicy;
    use roadnet::generators::{GridConfig, grid_network};

    fn map() -> roadnet::RoadNetwork {
        grid_network(&GridConfig { width: 16, height: 16, seed: 5, ..Default::default() }).unwrap()
    }

    fn service() -> OpaqueService<DirectionsServer<roadnet::RoadNetwork>> {
        let g = map();
        OpaqueService::from_parts(
            Obfuscator::new(g.clone(), FakeSelection::default_ring(), 11),
            DirectionsServer::new(g, SharingPolicy::PerSource),
            ObfuscationMode::Independent,
        )
    }

    fn request(i: u32, s: u32, t: u32, f: u32) -> ClientRequest {
        ClientRequest::new(
            ClientId(i),
            PathQuery::new(NodeId(s), NodeId(t)),
            ProtectionSettings::new(f, f).unwrap(),
        )
    }

    #[test]
    fn delivers_in_request_order_with_outcomes() {
        let mut svc = service();
        svc.verify_results = true;
        let reqs = vec![request(10, 0, 255, 3), request(11, 16, 240, 3), request(12, 32, 200, 2)];
        let resp = svc.process_batch(&reqs).unwrap();
        assert_eq!(resp.results.len(), 3);
        for (res, req) in resp.results.iter().zip(&reqs) {
            assert_eq!(res.client, req.client);
            assert_eq!(res.path.source(), req.query.source);
            assert_eq!(res.path.destination(), req.query.destination);
        }
        assert_eq!(
            resp.outcomes,
            reqs.iter().map(|r| (r.client, ClientOutcome::Delivered)).collect::<Vec<_>>()
        );
        assert_eq!(resp.report.mode, ObfuscationMode::Independent);
        assert_eq!(resp.report.num_units, 3);
    }

    #[test]
    fn duplicate_clients_still_error_on_the_direct_batch_path() {
        // The queue path defers duplicates to the next window; a batch
        // handed directly to process_batch has no next window, so the
        // ambiguity stays a typed error there.
        let mut svc = service();
        let reqs = vec![request(5, 0, 255, 2), request(5, 16, 240, 2)];
        let err = svc.process_batch(&reqs).unwrap_err();
        assert_eq!(err, OpaqueError::DuplicateClient { client: ClientId(5) });
        // Nothing was processed: the backend saw no queries.
        assert_eq!(svc.backend().stats().obfuscated_queries, 0);
    }

    #[test]
    fn invalid_request_becomes_rejected_outcome_in_service_mode() {
        let mut svc = service();
        let good = request(0, 0, 255, 2);
        let bad = request(1, 9999, 255, 2); // unknown node
        let resp = svc.process_batch(&[good, bad]).unwrap();
        assert_eq!(resp.results.len(), 1);
        assert_eq!(resp.outcomes[0], (ClientId(0), ClientOutcome::Delivered));
        match &resp.outcomes[1] {
            (ClientId(1), ClientOutcome::Rejected { reason }) => {
                assert!(reason.contains("not on the map"), "{reason}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // Rejected clients are never embedded: no breach entry for them.
        assert_eq!(resp.report.per_client_breach.len(), 1);
    }

    #[test]
    fn unsatisfiable_protection_is_rejected_per_client_not_per_batch() {
        // Constructor-valid protections that can never be met on a
        // 256-node map must cost only the greedy client, not the
        // co-batched ones. f = 150 is the subtle case: each side fits the
        // map alone, but S and T are disjoint, so 150 + 150 > 256 nodes.
        for greedy_f in [500, 150] {
            let mut svc = service();
            let good = request(0, 0, 255, 2);
            let greedy = request(1, 16, 240, greedy_f);
            let resp = svc.process_batch(&[good, greedy]).unwrap();
            assert_eq!(resp.results.len(), 1, "f = {greedy_f}");
            assert_eq!(resp.outcomes[0], (ClientId(0), ClientOutcome::Delivered));
            match &resp.outcomes[1] {
                (ClientId(1), ClientOutcome::Rejected { reason }) => {
                    assert!(reason.contains("fake endpoints"), "{reason}");
                }
                other => panic!("expected rejection for f = {greedy_f}, got {other:?}"),
            }
            // Strict mode keeps the historical batch-level NotEnoughFakes.
            svc.strict_delivery = true;
            let err = svc.process_batch(&[good, greedy]).unwrap_err();
            assert!(matches!(err, OpaqueError::NotEnoughFakes { .. }), "f = {greedy_f}");
        }
    }

    #[test]
    fn collective_shared_infeasibility_evicts_the_greediest_client() {
        // Each request is individually feasible (130+2 and 2+130 both fit
        // 256 nodes), but a shared query must meet max f_S = 130 AND
        // max f_T = 130 at once — 260 > 256. No single probe fails, so
        // the greediest request is evicted and the rest are served.
        let g = map();
        let mut svc = OpaqueService::from_parts(
            Obfuscator::new(g.clone(), FakeSelection::Uniform, 3),
            DirectionsServer::new(g, SharingPolicy::PerSource),
            ObfuscationMode::SharedGlobal,
        );
        let reqs = vec![
            ClientRequest::new(
                ClientId(0),
                PathQuery::new(NodeId(0), NodeId(255)),
                ProtectionSettings::new(130, 2).unwrap(),
            ),
            ClientRequest::new(
                ClientId(1),
                PathQuery::new(NodeId(16), NodeId(240)),
                ProtectionSettings::new(2, 130).unwrap(),
            ),
            request(2, 32, 200, 2),
        ];
        let resp = svc.process_batch(&reqs).unwrap();
        assert_eq!(resp.results.len(), 2, "the compatible pair is still served");
        let rejected: Vec<ClientId> = resp
            .outcomes
            .iter()
            .filter(|(_, o)| matches!(o, ClientOutcome::Rejected { .. }))
            .map(|(c, _)| *c)
            .collect();
        assert_eq!(rejected.len(), 1, "exactly one eviction: {:?}", resp.outcomes);
        assert!(rejected[0] == ClientId(0) || rejected[0] == ClientId(1));

        // Strict mode keeps the historical batch-level error.
        svc.strict_delivery = true;
        let err = svc.process_batch(&reqs).unwrap_err();
        assert!(matches!(err, OpaqueError::NotEnoughFakes { .. }));
    }

    #[test]
    fn clustered_infeasibility_stays_cluster_local() {
        // An infeasible pair (joint 130+130 > 256) plus an independent
        // high-demand client: whatever the clustering decides, the
        // high-demand client holds no binding max of its group and must be
        // served; exactly one of the infeasible pair is rejected.
        let g = map();
        let mut svc = OpaqueService::from_parts(
            Obfuscator::new(g.clone(), FakeSelection::Uniform, 3),
            DirectionsServer::new(g, SharingPolicy::PerSource),
            ObfuscationMode::SharedClustered(ClusteringConfig {
                radius_scale: 2.0,
                max_cluster_size: 8,
            }),
        );
        let reqs = vec![
            ClientRequest::new(
                ClientId(0),
                PathQuery::new(NodeId(0), NodeId(17)),
                ProtectionSettings::new(130, 2).unwrap(),
            ),
            ClientRequest::new(
                ClientId(1),
                PathQuery::new(NodeId(16), NodeId(33)),
                ProtectionSettings::new(2, 130).unwrap(),
            ),
            ClientRequest::new(
                ClientId(2),
                PathQuery::new(NodeId(255), NodeId(238)),
                ProtectionSettings::new(120, 10).unwrap(),
            ),
        ];
        let resp = svc.process_batch(&reqs).unwrap();
        assert_eq!(resp.results.len(), 2, "{:?}", resp.outcomes);
        assert_eq!(
            resp.outcomes[2].1,
            ClientOutcome::Delivered,
            "a client outside the infeasible pair must not be blamed"
        );
    }

    #[test]
    fn eviction_targets_the_binding_max_not_the_largest_sum() {
        // Infeasibility is max f_S + max f_T = 130 + 130 > 256, driven
        // only by clients 0 and 1. Client 2 has the largest f_S + f_T sum
        // (200) but holds neither binding max — a sum-based heuristic
        // would wrongly evict it (and then need a second eviction); the
        // binding-max rule serves it.
        let g = map();
        let mut svc = OpaqueService::from_parts(
            Obfuscator::new(g.clone(), FakeSelection::Uniform, 3),
            DirectionsServer::new(g, SharingPolicy::PerSource),
            ObfuscationMode::SharedGlobal,
        );
        let reqs = vec![
            ClientRequest::new(
                ClientId(0),
                PathQuery::new(NodeId(0), NodeId(255)),
                ProtectionSettings::new(130, 2).unwrap(),
            ),
            ClientRequest::new(
                ClientId(1),
                PathQuery::new(NodeId(16), NodeId(240)),
                ProtectionSettings::new(2, 130).unwrap(),
            ),
            ClientRequest::new(
                ClientId(2),
                PathQuery::new(NodeId(32), NodeId(200)),
                ProtectionSettings::new(100, 100).unwrap(),
            ),
        ];
        let resp = svc.process_batch(&reqs).unwrap();
        assert_eq!(resp.results.len(), 2, "one eviction suffices: {:?}", resp.outcomes);
        assert_eq!(
            resp.outcomes[2].1,
            ClientOutcome::Delivered,
            "the non-binding client must not be evicted"
        );
    }

    #[test]
    fn strategy_level_infeasibility_is_attributed_to_the_culprit_client() {
        // Two components: a 9-node path and an isolated 2-node edge. With
        // NetworkRing fakes, a request inside the 2-node component cannot
        // find any fake (network distance never leaves the component), a
        // constraint the count screen (f_s + f_t <= 11 nodes) cannot see.
        let mut b = roadnet::GraphBuilder::new();
        for i in 0..11 {
            b.add_node(roadnet::Point::new(i as f64, 0.0)).unwrap();
        }
        for i in 0..8 {
            b.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        b.add_edge(NodeId(9), NodeId(10), 1.0).unwrap();
        let g = b.build().unwrap();

        let mut svc = OpaqueService::from_parts(
            Obfuscator::new(g.clone(), crate::obfuscator::FakeSelection::default_network_ring(), 7),
            DirectionsServer::new(g, SharingPolicy::PerSource),
            ObfuscationMode::Independent,
        );
        let good = ClientRequest::new(
            ClientId(0),
            PathQuery::new(NodeId(0), NodeId(8)),
            ProtectionSettings::new(2, 2).unwrap(),
        );
        let stuck = ClientRequest::new(
            ClientId(1),
            PathQuery::new(NodeId(9), NodeId(10)),
            ProtectionSettings::new(2, 2).unwrap(),
        );
        let resp = svc.process_batch(&[good, stuck]).unwrap();
        assert_eq!(resp.results.len(), 1, "the feasible client is still served");
        assert_eq!(resp.outcomes[0], (ClientId(0), ClientOutcome::Delivered));
        assert!(
            matches!(resp.outcomes[1], (ClientId(1), ClientOutcome::Rejected { .. })),
            "culprit attributed, not the whole batch failed: {:?}",
            resp.outcomes[1]
        );

        // Strict mode keeps the historical batch-level error.
        svc.strict_delivery = true;
        let err = svc.process_batch(&[good, stuck]).unwrap_err();
        assert!(matches!(err, OpaqueError::NotEnoughFakes { .. }));
    }

    #[test]
    fn invalid_request_fails_batch_in_strict_mode() {
        let mut svc = service();
        svc.strict_delivery = true;
        let err = svc.process_batch(&[request(0, 9999, 255, 2)]).unwrap_err();
        assert!(matches!(err, OpaqueError::UnknownNode { .. }));
    }

    /// Tickets of the per-request events, in emission order.
    fn event_tickets(events: &[ServiceEvent]) -> Vec<Ticket> {
        events.iter().filter_map(ServiceEvent::ticket).collect()
    }

    #[test]
    fn queue_flushes_by_size_and_deadline() {
        let mut svc = service();
        svc.set_batch_policy(BatchPolicy { max_batch: 2, max_delay: 10.0 }).unwrap();
        let t0 = svc.submit(request(0, 0, 255, 2), 0.0).ticket().unwrap();
        assert!(svc.tick(0.0).unwrap().is_empty(), "one pending, no trigger");
        let t1 = svc.submit(request(1, 16, 240, 2), 1.0).ticket().unwrap();
        let events = svc.tick(1.0).unwrap();
        assert_eq!(event_tickets(&events), vec![t0, t1]);
        assert!(
            events.iter().take(2).all(|e| matches!(e, ServiceEvent::ResponseReady { .. })),
            "{events:?}"
        );
        assert!(matches!(events.last(), Some(ServiceEvent::BatchFlushed(_))));
        assert_eq!(svc.pending(), 0);

        // Deadline path: a single request flushes once it has waited.
        svc.submit(request(2, 32, 200, 2), 5.0).ticket().unwrap();
        assert!(svc.tick(14.9).unwrap().is_empty());
        let events = svc.tick(15.0).unwrap();
        match &events[0] {
            ServiceEvent::ResponseReady { waited, .. } => {
                assert!((waited - 10.0).abs() < 1e-12, "queued at 5.0, drained at 15.0");
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn flush_drains_partial_batches() {
        let mut svc = service();
        assert!(svc.flush(0.0).unwrap().is_empty());
        svc.submit(request(0, 0, 255, 2), 0.0).ticket().unwrap();
        let events = svc.flush(2.5).unwrap();
        assert_eq!(events.len(), 2, "one delivery + the report: {events:?}");
        match &events[0] {
            ServiceEvent::ResponseReady { client, waited, result, .. } => {
                assert_eq!(*client, ClientId(0));
                assert_eq!(result.client, ClientId(0));
                assert!((waited - 2.5).abs() < 1e-12);
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        match &events[1] {
            ServiceEvent::BatchFlushed(report) => assert_eq!(report.num_requests, 1),
            other => panic!("expected report, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_submission_defers_to_the_next_window() {
        // The gateway fix: a duplicate client id defers instead of
        // erroring, and both requests are eventually answered — one
        // window apart.
        let mut svc = service();
        let t0 = match svc.submit(request(5, 0, 255, 2), 0.0) {
            SubmitOutcome::Accepted(t) => t,
            other => panic!("expected acceptance, got {other:?}"),
        };
        let t1 = match svc.submit(request(5, 16, 240, 2), 0.1) {
            SubmitOutcome::Deferred(t) => t,
            other => panic!("duplicate must defer, got {other:?}"),
        };
        let events = svc.flush(1.0).unwrap();
        assert_eq!(event_tickets(&events), vec![t0]);
        let events = svc.flush(2.0).unwrap();
        assert_eq!(event_tickets(&events), vec![t1]);
        assert_eq!(svc.pending(), 0);
    }

    #[test]
    fn cancelled_requests_are_acknowledged_and_never_processed() {
        let mut svc = service();
        let t0 = svc.submit(request(0, 0, 255, 2), 0.0).ticket().unwrap();
        let t1 = svc.submit(request(1, 16, 240, 2), 0.1).ticket().unwrap();
        assert!(svc.cancel(t0));
        assert!(!svc.cancel(t0), "double cancel is a no-op");
        let events = svc.flush(1.0).unwrap();
        assert_eq!(
            events[0],
            ServiceEvent::Cancelled { ticket: t0, client: ClientId(0) },
            "{events:?}"
        );
        assert_eq!(event_tickets(&events[1..]), vec![t1]);
        match events.last() {
            Some(ServiceEvent::BatchFlushed(report)) => {
                assert_eq!(report.num_requests, 1, "the cancelled request was never processed");
            }
            other => panic!("expected report, got {other:?}"),
        }
        assert!(!svc.cancel(t1), "drained tickets cannot be cancelled");
    }

    #[test]
    fn deadline_expiry_sheds_with_a_rejected_event() {
        let mut svc = service();
        svc.set_batch_policy(BatchPolicy { max_batch: 100, max_delay: 50.0 }).unwrap();
        svc.set_admission_policy(AdmissionPolicy { queue_depth: 16, deadline: Some(3.0) }).unwrap();
        let t0 = svc.submit(request(0, 0, 255, 2), 0.0).ticket().unwrap();
        let events = svc.tick(10.0).unwrap();
        assert_eq!(events.len(), 1, "{events:?}");
        match &events[0] {
            ServiceEvent::Rejected {
                ticket,
                reason: RejectReason::DeadlineExpired { waited: w },
                waited,
                ..
            } => {
                assert_eq!(*ticket, t0);
                assert!((w - 10.0).abs() < 1e-12);
                assert_eq!(w, waited);
            }
            other => panic!("expected deadline shedding, got {other:?}"),
        }
        assert_eq!(svc.pending(), 0);
    }

    #[test]
    fn batch_policy_swaps_live_without_losing_state() {
        let mut svc = service();
        let t0 = svc.submit(request(0, 0, 255, 2), 0.0).ticket().unwrap();
        // Live swap: the pending request and its ticket survive, and the
        // new (shorter) deadline applies from the next tick.
        svc.set_batch_policy(BatchPolicy { max_batch: 100, max_delay: 1.0 }).unwrap();
        assert_eq!(svc.pending(), 1);
        let events = svc.tick(1.0).unwrap();
        assert_eq!(event_tickets(&events), vec![t0], "new 1s deadline applies");
        // Unsatisfiable policies are still rejected.
        let err = svc.set_batch_policy(BatchPolicy { max_batch: 0, max_delay: 1.0 }).unwrap_err();
        assert!(matches!(err, OpaqueError::InvalidConfig { .. }));
        let err = svc
            .set_admission_policy(AdmissionPolicy { queue_depth: 0, deadline: None })
            .unwrap_err();
        assert!(matches!(err, OpaqueError::InvalidConfig { .. }));
        // The ticket sequence continues across swaps — receipts stay
        // unique for the service's lifetime.
        svc.set_batch_policy(BatchPolicy { max_batch: 5, max_delay: 1.0 }).unwrap();
        let t1 = svc.submit(request(1, 16, 240, 2), 2.0).ticket().unwrap();
        assert_ne!(t0, t1, "ticket reused across policy change");
    }

    fn sharded_service(
        execution: ExecutionPolicy,
        mode: ObfuscationMode,
    ) -> OpaqueService<ShardedBackend<DirectionsServer<roadnet::RoadNetwork>>> {
        let g = map();
        let servers: Vec<_> =
            (0..4).map(|_| DirectionsServer::new(g.clone(), SharingPolicy::PerSource)).collect();
        let mut svc = OpaqueService::from_parts(
            Obfuscator::new(g, FakeSelection::default_ring(), 23),
            ShardedBackend::new(servers).unwrap(),
            mode,
        );
        svc.execution = execution;
        svc.verify_results = true;
        svc
    }

    #[test]
    fn worker_pool_batches_are_byte_identical_to_sequential() {
        for mode in [
            ObfuscationMode::Independent,
            ObfuscationMode::SharedGlobal,
            ObfuscationMode::SharedClustered(ClusteringConfig::default()),
        ] {
            let mut seq = sharded_service(ExecutionPolicy::Sequential, mode);
            let mut par = sharded_service(ExecutionPolicy::WorkerPool { threads: 4 }, mode);
            let reqs: Vec<ClientRequest> =
                (0..8).map(|i| request(i, i * 13 % 256, (i * 37 + 200) % 256, 3)).collect();
            let a = seq.process_batch(&reqs).unwrap();
            let b = par.process_batch(&reqs).unwrap();
            assert_eq!(a.outcomes, b.outcomes, "{mode:?}");
            assert_eq!(a.results.len(), b.results.len(), "{mode:?}");
            for (x, y) in a.results.iter().zip(&b.results) {
                assert_eq!(x.client, y.client, "{mode:?}");
                assert_eq!(x.path, y.path, "{mode:?}");
            }
            // The headline guarantee, at report granularity: serialized
            // reports are byte-identical.
            assert_eq!(
                serde_json::to_string(&a.report).unwrap(),
                serde_json::to_string(&b.report).unwrap(),
                "{mode:?}"
            );
            // And the fleet-merged cumulative counters agree too.
            assert_eq!(seq.backend().stats(), par.backend().stats(), "{mode:?}");
        }
    }

    #[test]
    fn report_server_counters_are_per_batch_not_cumulative() {
        // Regression pin: shard counters accumulate across batches and are
        // never reset, so reports must carry per-batch deltas — under both
        // execution policies.
        for execution in [ExecutionPolicy::Sequential, ExecutionPolicy::WorkerPool { threads: 4 }] {
            let mut svc = sharded_service(execution, ObfuscationMode::Independent);
            // Protection size 1 = no fakes: both batches then carry
            // identical queries (fake selection would advance the RNG and
            // change the second batch's work), so equal per-batch deltas
            // are exactly what distinguishes per-batch from cumulative.
            let reqs: Vec<ClientRequest> =
                (0..6).map(|i| request(i, i * 11 % 256, (i * 29 + 128) % 256, 1)).collect();
            let first = svc.process_batch(&reqs).unwrap().report;
            let second = svc.process_batch(&reqs).unwrap().report;
            assert!(first.server_settled > 0 && first.server_trees_grown > 0);
            // Identical work in both batches: a cumulative reading would
            // make the second report roughly double the first.
            assert_eq!(second.server_settled, first.server_settled, "{execution:?}");
            assert_eq!(second.server_relaxed, first.server_relaxed, "{execution:?}");
            assert_eq!(second.server_trees_grown, first.server_trees_grown, "{execution:?}");
            // The per-batch deltas recompose exactly to the cumulative
            // fleet counters.
            let total = svc.backend().stats();
            assert_eq!(total.search.settled, first.server_settled + second.server_settled);
            assert_eq!(total.search.relaxed, first.server_relaxed + second.server_relaxed);
            assert_eq!(total.trees_grown, first.server_trees_grown + second.server_trees_grown);
        }
    }

    #[test]
    fn shared_mode_reduces_server_load_and_improves_breach() {
        // §III-C's central trade-off, pinned at the service layer
        // (ported from the removed OpaqueSystem shim tests): sharing
        // other clients' true endpoints as cover must cost the server no
        // more pairs, add strictly fewer fakes, and improve breach.
        let reqs: Vec<ClientRequest> =
            (0..6).map(|i| request(i, i * 17 % 256, (i * 31 + 128) % 256, 4)).collect();
        let indep =
            service().process_batch_with_mode(&reqs, ObfuscationMode::Independent).unwrap().report;
        let shared =
            service().process_batch_with_mode(&reqs, ObfuscationMode::SharedGlobal).unwrap().report;
        assert!(shared.total_pairs <= indep.total_pairs);
        assert!(shared.fakes_added < indep.fakes_added);
        // Shared |S|,|T| ≥ 6 true endpoints each, so breach ≤ 1/36 < 1/16.
        assert!(shared.mean_breach() < indep.mean_breach());
    }

    #[test]
    fn traffic_is_accounted_per_hop() {
        // All four Figure-5 hops carry bytes, and candidate downloads
        // dominate deliveries — the measurable §II overconsumption
        // (ported from the removed OpaqueSystem shim tests).
        let reqs = vec![request(0, 0, 255, 4), request(1, 16, 240, 4)];
        let report =
            service().process_batch_with_mode(&reqs, ObfuscationMode::SharedGlobal).unwrap().report;
        let t = report.traffic;
        assert!(t.requests_bytes > 0);
        assert!(t.queries_bytes > 0);
        assert!(t.results_bytes > 0);
        assert!(t.candidates_bytes > t.results_bytes);
        assert!(t.candidate_amplification() > 1.0);
        assert!(report.redundancy_ratio() > 1.0);
    }

    #[test]
    fn acks_survive_a_failed_batch() {
        // A batch-processing error discards the window's events, but the
        // cancellation/shedding acknowledgements taken for that event
        // list are unrelated to the failed batch: they must re-emit on
        // the next tick so every ticket still resolves exactly once.
        let mut svc = service();
        svc.strict_delivery = true; // any invalid request fails the batch
        svc.set_admission_policy(AdmissionPolicy { queue_depth: 16, deadline: Some(2.0) }).unwrap();
        let cancelled = svc.submit(request(0, 0, 255, 2), 0.0).ticket().unwrap();
        let overdue = svc.submit(request(1, 16, 240, 2), 0.0).ticket().unwrap();
        assert!(svc.cancel(cancelled));
        // An expired straggler plus a poison request for the next window.
        let _poison = svc.submit(request(2, 9999, 255, 2), 5.0).ticket().unwrap();
        let err = svc.flush(5.0).unwrap_err();
        assert!(matches!(err, OpaqueError::UnknownNode { .. }));
        // The poison batch is gone; the acks were restored and re-emit.
        let events = svc.flush(6.0).unwrap();
        assert_eq!(
            events.iter().filter_map(ServiceEvent::ticket).collect::<Vec<_>>(),
            vec![cancelled, overdue],
            "{events:?}"
        );
        assert!(matches!(events[0], ServiceEvent::Cancelled { .. }));
        assert!(matches!(
            events[1],
            ServiceEvent::Rejected { reason: RejectReason::DeadlineExpired { .. }, .. }
        ));
        assert_eq!(svc.pending(), 0);
    }

    #[test]
    fn acks_survive_two_consecutive_failed_batches() {
        // Restoration must be idempotent across repeated failures: if the
        // tick that re-emits the restored acks *itself* fails on a fresh
        // poison window, the acks must be restored again — and still emit
        // exactly once when a clean tick finally lands.
        let mut svc = service();
        svc.strict_delivery = true;
        svc.set_admission_policy(AdmissionPolicy { queue_depth: 16, deadline: Some(2.0) }).unwrap();
        let cancelled = svc.submit(request(0, 0, 255, 2), 0.0).ticket().unwrap();
        let overdue = svc.submit(request(1, 16, 240, 2), 0.0).ticket().unwrap();
        assert!(svc.cancel(cancelled));
        let _poison_a = svc.submit(request(2, 9999, 255, 2), 5.0).ticket().unwrap();
        let first = svc.flush(5.0).unwrap_err();
        assert!(matches!(first, OpaqueError::UnknownNode { .. }));
        // The re-emitting tick fails too: a second poison window drains
        // alongside the restored acks.
        let _poison_b = svc.submit(request(3, 9999, 255, 2), 6.0).ticket().unwrap();
        let second = svc.flush(6.0).unwrap_err();
        assert!(matches!(second, OpaqueError::UnknownNode { .. }));
        // Third time clean: the acks emit once each, in order, no dupes.
        let events = svc.flush(7.0).unwrap();
        assert_eq!(
            events.iter().filter_map(ServiceEvent::ticket).collect::<Vec<_>>(),
            vec![cancelled, overdue],
            "{events:?}"
        );
        assert!(matches!(events[0], ServiceEvent::Cancelled { .. }));
        assert!(matches!(
            events[1],
            ServiceEvent::Rejected { reason: RejectReason::DeadlineExpired { .. }, .. }
        ));
        assert_eq!(svc.pending(), 0);
        assert!(svc.flush(8.0).unwrap().is_empty(), "acks must not emit a second time");
    }

    #[test]
    fn per_mode_override_matches_configured_mode() {
        let mut svc = service();
        let reqs: Vec<ClientRequest> =
            (0..4).map(|i| request(i, i * 17 % 256, (i * 31 + 128) % 256, 3)).collect();
        let shared = svc.process_batch_with_mode(&reqs, ObfuscationMode::SharedGlobal).unwrap();
        assert_eq!(shared.report.mode, ObfuscationMode::SharedGlobal);
        assert_eq!(shared.report.num_units, 1);
    }
}
