//! Strongly-typed identifiers for road-network entities.
//!
//! Nodes and edges are referred to by compact `u32` indices. Newtypes keep
//! the two id spaces from being mixed up and keep hot structures small
//! (4 bytes per id instead of 8 for `usize`).

use std::fmt;

/// Identifier of a node (road junction / endpoint) in a [`crate::RoadNetwork`].
///
/// Node ids are dense: a network with `n` nodes uses ids `0..n`.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index into node-indexed arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        assert!(i <= u32::MAX as usize, "node index {i} exceeds u32 range");
        NodeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of an undirected edge (road segment) in a [`crate::RoadNetwork`].
///
/// Edge ids are dense over the *input* edge list handed to the builder; an
/// undirected edge yields two arcs but keeps one `EdgeId`.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The id as a `usize` index into edge-indexed arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        assert!(i <= u32::MAX as usize, "edge index {i} exceeds u32 range");
        EdgeId(i as u32)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_index() {
        let n = NodeId::from_index(42);
        assert_eq!(n, NodeId(42));
        assert_eq!(n.index(), 42);
    }

    #[test]
    fn edge_id_round_trips_through_index() {
        let e = EdgeId::from_index(7);
        assert_eq!(e, EdgeId(7));
        assert_eq!(e.index(), 7);
    }

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
        assert_eq!(format!("{}", NodeId(3)), "3");
        assert_eq!(format!("{:?}", EdgeId(9)), "e9");
        assert_eq!(format!("{}", EdgeId(9)), "9");
    }

    #[test]
    #[should_panic(expected = "exceeds u32 range")]
    fn node_id_overflow_panics() {
        // Only meaningful on 64-bit targets where usize can exceed u32.
        if usize::BITS > 32 {
            let _ = NodeId::from_index(u32::MAX as usize + 1);
        } else {
            panic!("exceeds u32 range"); // keep test semantics on 32-bit
        }
    }

    #[test]
    fn ids_order_by_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(0) < EdgeId(10));
    }
}
