//! # roadnet — road-network substrate for the OPAQUE reproduction
//!
//! This crate provides everything below the search algorithms in the OPAQUE
//! stack (Lee, Lee, Leong & Zheng, *OPAQUE: Protecting Path Privacy in
//! Directions Search*, ICDE 2009):
//!
//! * the weighted-graph road-network model `G(N, E)` of §III-A
//!   ([`RoadNetwork`], [`GraphBuilder`]);
//! * seeded synthetic network generators standing in for TIGER/Line maps
//!   ([`generators`]);
//! * a CCAM-style connectivity-clustered disk-page simulation with an exact
//!   LRU buffer pool, so experiments can measure the I/O component of the
//!   paper's Lemma 1 cost model ([`storage`]);
//! * a uniform-grid spatial index used by the obfuscator to pick fake
//!   endpoints ([`SpatialIndex`]);
//! * a plain-text exchange format for networks ([`io`]).
//!
//! ## Quick example
//!
//! ```
//! use roadnet::generators::{GridConfig, grid_network};
//! use roadnet::{GraphView, NodeId, SpatialIndex};
//!
//! let net = grid_network(&GridConfig { width: 8, height: 8, ..Default::default() }).unwrap();
//! assert!(net.is_connected());
//!
//! // Nearest node to a coordinate, via the spatial index.
//! let idx = SpatialIndex::build(&net);
//! let n = idx.nearest(roadnet::Point::new(3.2, 4.1));
//! assert!(n.index() < net.num_nodes());
//!
//! // Adjacency traversal through the GraphView trait.
//! let mut degree = 0;
//! net.for_each_arc(NodeId(0), &mut |_, _| degree += 1);
//! assert!(degree > 0);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod generators;
pub mod geo;
pub mod graph;
pub mod ids;
pub mod io;
pub mod region;
pub mod spatial;
pub mod storage;

pub use error::{Result, RoadNetError};
pub use geo::{BoundingBox, Point};
pub use graph::{Arc, Edge, GraphBuilder, GraphView, RoadNetwork};
pub use ids::{EdgeId, NodeId};
pub use region::RegionView;
pub use spatial::SpatialIndex;
pub use storage::{
    ChunkConfig, ChunkedCsr, IoStats, LruBuffer, PageLayout, PagePlacement, PagedGraph,
};
