//! Property-based invariants of the obfuscation layer: Definition 1
//! (embedding), the protection contract, Definition 2 (breach formula),
//! and the filter's exactness — across random workloads, strategies, and
//! modes.

use opaque::{
    ClientId, ClientRequest, ClusteringConfig, FakeSelection, ObfuscationMode, Obfuscator,
    PathQuery, ProtectionSettings, ServiceBuilder,
};
use pathsearch::SharingPolicy;
use proptest::prelude::*;
use roadnet::NodeId;
use roadnet::generators::{GridConfig, grid_network};

fn map() -> roadnet::RoadNetwork {
    grid_network(&GridConfig { width: 15, height: 15, seed: 77, ..Default::default() })
        .expect("valid network")
}

fn arb_requests(max: usize) -> impl Strategy<Value = Vec<ClientRequest>> {
    proptest::collection::vec((0u32..225, 0u32..225, 1u32..6, 1u32..6), 1..max).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .filter(|(_, (s, t, _, _))| s != t)
            .map(|(i, (s, t, f_s, f_t))| {
                ClientRequest::new(
                    ClientId(i as u32),
                    PathQuery::new(NodeId(s), NodeId(t)),
                    ProtectionSettings::new(f_s, f_t).expect("generated >= 1"),
                )
            })
            .collect()
    })
}

fn arb_strategy() -> impl Strategy<Value = FakeSelection> {
    prop_oneof![
        Just(FakeSelection::Uniform),
        Just(FakeSelection::default_ring()),
        Just(FakeSelection::default_network_ring()),
        Just(FakeSelection::Weighted), // no weights attached → documented uniform fallback
        (0.1f64..0.9, 1.0f64..3.0).prop_map(|(lo, span)| FakeSelection::Ring { lo, hi: lo + span }),
        (0.1f64..0.9, 1.0f64..2.0)
            .prop_map(|(lo, span)| FakeSelection::NetworkRing { lo, hi: lo + span }),
    ]
}

fn arb_mode() -> impl Strategy<Value = ObfuscationMode> {
    prop_oneof![
        Just(ObfuscationMode::Independent),
        Just(ObfuscationMode::SharedGlobal),
        (0.1f64..2.0, 2usize..10).prop_map(|(radius_scale, max_cluster_size)| {
            ObfuscationMode::SharedClustered(ClusteringConfig { radius_scale, max_cluster_size })
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn obfuscation_units_always_well_formed(
        requests in arb_requests(8),
        strategy in arb_strategy(),
        mode in arb_mode(),
        seed in proptest::num::u64::ANY,
    ) {
        prop_assume!(!requests.is_empty());
        let mut ob = Obfuscator::new(map(), strategy, seed);
        let units = ob.obfuscate_batch(&requests, mode).expect("batch fits the map");

        // Every request is carried by exactly one unit.
        let carried: usize = units.iter().map(|u| u.requests.len()).sum();
        prop_assert_eq!(carried, requests.len());

        for unit in &units {
            // Definition 1: true endpoints embedded; protection satisfied.
            prop_assert!(unit.is_well_formed());
            // Definition 2: breach probability equals 1/(|S|·|T|).
            let expected = 1.0
                / (unit.query.sources().len() as f64 * unit.query.targets().len() as f64);
            prop_assert!((unit.query.breach_probability() - expected).abs() < 1e-12);
            // Sets are strictly sorted (deduplicated).
            for w in unit.query.sources().windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            for w in unit.query.targets().windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn independent_obfuscation_meets_exact_sizes(
        s in 0u32..225, t in 0u32..225, f_s in 1u32..8, f_t in 1u32..8,
        strategy in arb_strategy(),
        seed in proptest::num::u64::ANY,
    ) {
        prop_assume!(s != t);
        let mut ob = Obfuscator::new(map(), strategy, seed);
        let req = ClientRequest::new(
            ClientId(0),
            PathQuery::new(NodeId(s), NodeId(t)),
            ProtectionSettings::new(f_s, f_t).expect(">= 1"),
        );
        let unit = ob.obfuscate_independent(&req).expect("map large enough");
        prop_assert_eq!(unit.query.sources().len(), f_s as usize);
        prop_assert_eq!(unit.query.targets().len(), f_t as usize);
    }

    #[test]
    fn end_to_end_always_returns_true_shortest_paths(
        requests in arb_requests(6),
        mode in arb_mode(),
        seed in proptest::num::u64::ANY,
    ) {
        prop_assume!(!requests.is_empty());
        let g = map();
        let mut svc = ServiceBuilder::new()
            .map(g.clone())
            .fake_selection(FakeSelection::default_ring())
            .seed(seed)
            .sharing_policy(SharingPolicy::PerSource)
            .verify_results(true)
            .build()
            .expect("valid configuration");
        let results = svc.process_batch_with_mode(&requests, mode).expect("pipeline ok").results;
        prop_assert_eq!(results.len(), requests.len());
        for (res, req) in results.iter().zip(&requests) {
            prop_assert_eq!(res.client, req.client);
            let truth = pathsearch::shortest_distance(&g, req.query.source, req.query.destination)
                .expect("grid is connected");
            prop_assert!((res.path.distance() - truth).abs() < 1e-9);
        }
    }

    #[test]
    fn breach_never_exceeds_the_requested_protection(
        requests in arb_requests(6),
        mode in arb_mode(),
        seed in proptest::num::u64::ANY,
    ) {
        prop_assume!(!requests.is_empty());
        let g = map();
        let mut ob = Obfuscator::new(g, FakeSelection::Uniform, seed);
        let units = ob.obfuscate_batch(&requests, mode).expect("ok");
        for unit in &units {
            for r in &unit.requests {
                prop_assert!(
                    unit.query.breach_probability() <= r.protection.breach_probability() + 1e-12,
                    "client {:?}: {} > {}",
                    r.client,
                    unit.query.breach_probability(),
                    r.protection.breach_probability()
                );
            }
        }
    }
}
