//! Criterion timings for E1: single-pair search algorithms.

use criterion::{Criterion, criterion_group, criterion_main};
use pathsearch::{AltPreprocessing, Goal, Searcher, alt, astar, bidirectional};
use roadnet::NodeId;
use roadnet::generators::NetworkClass;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_algorithms");
    for class in NetworkClass::ALL {
        let g = class.generate(2_000, 0xBE).expect("valid network");
        let n = g.num_nodes() as u32;
        // A long diagonal-ish query: the regime where algorithms differ.
        let (s, t) = (NodeId(0), NodeId(n - 1));

        group.bench_function(format!("dijkstra/{}", class.name()), |b| {
            let mut searcher = Searcher::new();
            b.iter(|| {
                let st = searcher.run(&g, black_box(s), &Goal::Single(t));
                black_box(st.settled)
            })
        });
        group.bench_function(format!("astar/{}", class.name()), |b| {
            b.iter(|| {
                let (p, st) = astar(&g, black_box(s), t);
                black_box((p.map(|p| p.distance()), st.settled))
            })
        });
        group.bench_function(format!("bidirectional/{}", class.name()), |b| {
            b.iter(|| {
                let (p, st) = bidirectional(&g, black_box(s), t);
                black_box((p.map(|p| p.distance()), st.settled))
            })
        });
        let pre = AltPreprocessing::build(&g, 8);
        group.bench_function(format!("alt-8/{}", class.name()), |b| {
            b.iter(|| {
                let (p, st) = alt(&g, &pre, black_box(s), t);
                black_box((p.map(|p| p.distance()), st.settled))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
