//! R3 — panic-path: no panicking constructs in the network hot path and
//! the gateway submit/tick path.
//!
//! A panic in the reactor, the frame codec, the connection state
//! machine, or the gateway's submit/tick loop turns one hostile (or
//! merely unlucky) input into a process abort — the exact opposite of
//! the failure-domain story those layers document (drain *one*
//! connection, discard *one* window). This rule flags, in configured
//! hot-path files, outside test regions:
//!
//! - `.unwrap()` / `.expect(…)`;
//! - `panic!` / `unreachable!` / `todo!` / `unimplemented!`;
//! - slice/array indexing (`x[i]`, `x[a..b]`) — every `[]` is an
//!   implicit assert, and hostile frames control many of the indices'
//!   inputs.
//!
//! Sites whose panic-freedom is locally provable (a bounds check on the
//! lines above, an invariant the type system cannot carry) stay, with a
//! `// lint: allow(panic-path) — <proof sketch>` marker. Everything else
//! converts to typed-error propagation: connection-fatal, never
//! process-fatal.

use crate::lexer::TokKind;
use crate::rules::RawViolation;
use crate::source::SourceFile;

/// Macros that panic.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can directly precede `[` without it being an index
/// expression (`return [a, b]`, `break [x]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "return", "break", "in", "let", "mut", "ref", "else", "match", "if", "while", "move", "yield",
    "do", "as",
];

/// Run R3 over one file (the engine scopes which files).
pub fn check(f: &SourceFile) -> Vec<RawViolation> {
    let mut out = Vec::new();
    let n = f.code_len();
    for ci in 0..n {
        let t = f.ct(ci);
        if f.in_test(t.line) || t.kind != TokKind::Ident && !t.is_punct('[') {
            continue;
        }
        // .unwrap() / .expect(
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && ci >= 1
            && f.ct(ci - 1).is_punct('.')
            && ci + 1 < n
            && f.ct(ci + 1).is_punct('(')
        {
            out.push(RawViolation::new(
                "panic-path",
                t.line,
                format!(
                    "`.{}()` on the hot path: a failure here aborts the process — convert to \
                     typed-error propagation (connection-fatal at worst)",
                    t.text
                ),
            ));
        }
        // panic-family macros.
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && ci + 1 < n
            && f.ct(ci + 1).is_punct('!')
        {
            out.push(RawViolation::new(
                "panic-path",
                t.line,
                format!("`{}!` on the hot path: return a typed error instead", t.text),
            ));
        }
        // Index expressions: `[` whose previous token ends an expression.
        if t.is_punct('[') && ci >= 1 {
            let prev = f.ct(ci - 1);
            let indexes_expr = match prev.kind {
                TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                TokKind::Punct => prev.is_punct(')') || prev.is_punct(']') || prev.is_punct('?'),
                _ => false,
            };
            if indexes_expr {
                out.push(RawViolation::new(
                    "panic-path",
                    t.line,
                    format!(
                        "`{}[…]` indexing on the hot path panics when out of bounds — use \
                         `.get(…)` or carry a local bounds proof in an allow marker",
                        prev.text
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations(src: &str) -> Vec<RawViolation> {
        check(&SourceFile::parse("x.rs", src))
    }

    #[test]
    fn unwrap_and_expect_are_flagged() {
        let v = violations("fn f() { a.unwrap(); b.expect(\"msg\"); }\n");
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let v = violations(
            "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.unwrap_or_default(); }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn panic_macros_are_flagged_but_format_strings_are_not() {
        let v = violations(
            "fn f() { panic!(\"boom\"); unreachable!(); }\nfn g() { let s = \"panic! unreachable!\"; }\n",
        );
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn indexing_is_flagged_but_array_literals_types_and_attrs_are_not() {
        let src = "#[derive(Debug)]\n\
                   struct S;\n\
                   fn f(live: &[u8], n: usize) -> u8 {\n\
                       let chunk = [0u8; 16];\n\
                       let arr: [u8; 4] = [1, 2, 3, 4];\n\
                       let v = vec![1, 2];\n\
                       live[n]\n\
                   }\n";
        let v = violations(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("live["));
        assert_eq!(v[0].line, 7);
    }

    #[test]
    fn slice_expressions_and_chained_indexing_are_flagged() {
        let v =
            violations("fn f(b: &[u8]) { let x = &b[..4]; let y = g()[0]; let z = b[0][1]; }\n");
        assert_eq!(v.len(), 4, "{v:?}"); // b[..4], g()[0], b[0], [0][1]
    }

    #[test]
    fn slice_patterns_are_not_indexing() {
        let v = violations("fn f(b: &[u8; 2]) { let [lo, hi] = *b; if let [x, ..] = b[..] {} }\n");
        // Only `b[..]` is an index expression here.
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn tests_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { a.unwrap(); b[0]; panic!(); }\n}\n";
        assert!(violations(src).is_empty());
    }

    #[test]
    fn raw_strings_with_unwrap_text_are_invisible() {
        let src = r####"fn f() { let s = r#"x.unwrap() b[0] panic!"#; }"####;
        assert!(violations(src).is_empty());
    }
}
