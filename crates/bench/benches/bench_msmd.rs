//! Criterion timings for E4: MSMD sharing policies (Lemma 1 in wall-clock
//! form) across obfuscated-query shapes.

use criterion::{Criterion, criterion_group, criterion_main};
use opaque::{ClientId, ClientRequest, FakeSelection, Obfuscator, PathQuery, ProtectionSettings};
use pathsearch::{SearchArena, SharingPolicy, msmd_in};
use roadnet::NodeId;
use roadnet::generators::NetworkClass;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let g = NetworkClass::Geometric.generate(3_000, 0xBE).expect("valid network");
    let n = g.num_nodes() as u32;
    let mut ob = Obfuscator::new(g.clone(), FakeSelection::default_ring(), 0xBE);

    let mut group = c.benchmark_group("e4_msmd");
    for (f_s, f_t) in [(2u32, 2u32), (4, 4), (8, 8)] {
        let req = ClientRequest::new(
            ClientId(0),
            PathQuery::new(NodeId(7), NodeId(n - 11)),
            ProtectionSettings::new(f_s, f_t).expect("positive"),
        );
        let unit = ob.obfuscate_independent(&req).expect("map large enough");
        let (s, t) = (unit.query.sources().to_vec(), unit.query.targets().to_vec());

        for policy in SharingPolicy::ALL {
            // One arena per measured configuration: steady-state queries
            // reuse every search buffer, as the server does.
            let mut arena = SearchArena::new();
            group.bench_function(format!("{}x{}/{}", f_s, f_t, policy.name()), |b| {
                b.iter(|| {
                    let r = msmd_in(&mut arena, &g, black_box(&s), black_box(&t), policy);
                    black_box(r.stats.settled)
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
