//! E11 — the repeated-query intersection attack and the consistent-fakes
//! defense (extension; motivated by §IV's "satisfied requests are
//! immediately discarded … for sake of security").
//!
//! Definition 2's guarantee is per-query. A client who re-issues the same
//! request — a retry, or directions checked again the next day — receives a
//! fresh obfuscation each time; a server that links the rounds intersects
//! the represented pair sets and watches everything but the true pair
//! drop out. The defense is for the obfuscator to memoize query → fakes.
//! This experiment measures the breach trajectory with and without the
//! defense, for two protection levels and two fake-selection strategies.

use crate::setup::{Scale, network_with_index};
use crate::table::{ExperimentTable, f3};
use opaque::attack::intersection_attack;
use opaque::{ClientId, ClientRequest, FakeSelection, Obfuscator, PathQuery, ProtectionSettings};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::NodeId;
use roadnet::generators::NetworkClass;

/// Run E11.
pub fn run(scale: &Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E11",
        "repeated-query intersection attack vs consistent fakes",
        "extension of Definition 2 across repeated queries",
        &[
            "strategy",
            "f",
            "defense",
            "round-1 breach",
            "round-3 breach",
            "round-6 breach",
            "pinpointed",
        ],
    );
    let (g, _) = network_with_index(NetworkClass::Grid, scale);
    let n = g.num_nodes() as u32;
    let mut rng = StdRng::seed_from_u64(0xE11);
    let rounds = 6usize;
    let repeats = (scale.queries / 4).max(4);

    for strategy in [FakeSelection::Uniform, FakeSelection::default_ring()] {
        for f in [3u32, 6] {
            for consistent in [false, true] {
                let mut breach_at = [0.0f64; 3]; // rounds 1, 3, 6
                let mut pinpointed = 0usize;
                for rep in 0..repeats {
                    let (s, d) = loop {
                        let s = NodeId(rng.gen_range(0..n));
                        let d = NodeId(rng.gen_range(0..n));
                        if s != d {
                            break (s, d);
                        }
                    };
                    let req = ClientRequest::new(
                        ClientId(0),
                        PathQuery::new(s, d),
                        ProtectionSettings::new(f, f).expect("positive"),
                    );
                    let mut ob = Obfuscator::new(g.clone(), strategy, 0xE11 ^ rep as u64)
                        .with_consistent_fakes(consistent);
                    let units: Vec<_> = (0..rounds)
                        .map(|_| ob.obfuscate_independent(&req).expect("map large enough"))
                        .collect();
                    for (slot, upto) in [(0usize, 1usize), (1, 3), (2, 6)] {
                        let r = intersection_attack(&units[..upto], &req.query);
                        breach_at[slot] += r.final_breach;
                    }
                    let full = intersection_attack(&units, &req.query);
                    pinpointed += full.pinpointed as usize;
                }
                let k = repeats as f64;
                t.row(vec![
                    strategy.name().into(),
                    f.to_string(),
                    if consistent { "consistent" } else { "fresh" }.into(),
                    f3(breach_at[0] / k),
                    f3(breach_at[1] / k),
                    f3(breach_at[2] / k),
                    f3(pinpointed as f64 / k),
                ]);
            }
        }
    }
    t.note(
        "fresh fakes: breach decays toward 1.0 as rounds accumulate (true pair always survives)",
    );
    t.note("consistent fakes: every round is identical, breach stays at 1/f² indefinitely");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_defense_holds_attack_breaches() {
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), 8);
        for row in &t.rows {
            let round1: f64 = row[3].parse().unwrap();
            let round6: f64 = row[5].parse().unwrap();
            let pinpointed: f64 = row[6].parse().unwrap();
            let f: f64 = row[1].parse().unwrap();
            let nominal = 1.0 / (f * f);
            assert!((round1 - nominal).abs() < 1e-3, "round 1 must match Definition 2: {row:?}");
            if row[2] == "consistent" {
                assert!((round6 - nominal).abs() < 1e-3, "defense failed: {row:?}");
                assert_eq!(pinpointed, 0.0, "defense must never pinpoint: {row:?}");
            } else {
                assert!(round6 > nominal, "attack made no progress: {row:?}");
            }
        }
        // Uniform fresh fakes at f=3 on a 400-node map: six rounds should
        // pinpoint nearly always.
        let uniform_fresh_f3 = t
            .rows
            .iter()
            .find(|r| r[0] == "uniform" && r[1] == "3" && r[2] == "fresh")
            .expect("row exists");
        let pin: f64 = uniform_fresh_f3[6].parse().unwrap();
        assert!(pin > 0.5, "expected frequent pinpointing, got {pin}");
    }
}
