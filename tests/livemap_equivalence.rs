//! The live-map guarantee, as a property: surgical invalidation is
//! **invisible to every observable byte**. For random maps, random
//! batches, random interleaved weight churn, random obfuscator seeds, any
//! LRU capacity, either execution policy, and either placement policy, a
//! `CachePolicy::Lru` service driven through `update_weights` produces
//! byte-identical output to a `CachePolicy::Off` service recomputing
//! every tree fresh on the same churned map — the same delivered paths,
//! the same per-client outcomes, and the same serialized `BatchReport`.
//!
//! `update_weights` may only *evict* — never keep a trace whose recorded
//! sweep crossed an updated edge (the stale tree a drop-all `swap_map`
//! could never serve). Any divergence this harness could catch would be a
//! real invalidation bug: a touched trace surviving the edge-set scan, a
//! shard missing an update, or the obfuscator's trust-domain map falling
//! out of lockstep with the fleet's (path verification re-walks delivered
//! paths against the obfuscator's copy, so drift turns into rejections).
//!
//! The deterministic regression at the bottom pins the stale-adoption
//! case on a ring where the weight update flips the shortest side: a
//! warm cache must deliver the *new* detour, not the cached short way.

use opaque::{
    CachePolicy, ClientId, ClientRequest, DirectionsBackend, ExecutionPolicy, ObfuscationMode,
    PartitionPolicy, PathQuery, ProtectionSettings, ServiceBuilder, ServiceResponse,
};
use pathsearch::SharingPolicy;
use proptest::prelude::*;
use roadnet::{EdgeId, GraphBuilder, NodeId, Point, RoadNetwork};

/// Random connected road map: a random spanning tree plus extra random
/// edges (parallel roads allowed), positive weights.
fn arb_map(max_nodes: usize) -> impl Strategy<Value = RoadNetwork> {
    (4..max_nodes)
        .prop_flat_map(|n| {
            let coords = proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), n);
            let parents = proptest::collection::vec(proptest::num::u32::ANY, n - 1);
            let extra = proptest::collection::vec((0..n as u32, 0..n as u32, 1.0f64..3.0), 0..n);
            (coords, parents, extra)
        })
        .prop_map(|(coords, parents, extra)| {
            let mut b = GraphBuilder::new();
            for (x, y) in &coords {
                b.add_node(Point::new(*x, *y)).expect("finite coords");
            }
            let n = coords.len();
            let euclid = |a: usize, c: usize| {
                Point::new(coords[a].0, coords[a].1).distance(Point::new(coords[c].0, coords[c].1))
            };
            for (i, p) in parents.iter().enumerate() {
                let child = i + 1;
                let parent = (*p as usize) % child;
                let w = euclid(parent, child).max(f64::EPSILON) * 1.1;
                b.add_edge(NodeId::from_index(parent), NodeId::from_index(child), w)
                    .expect("valid tree edge");
            }
            for (a, c, factor) in extra {
                let (a, c) = (a as usize % n, c as usize % n);
                if a != c {
                    let w = euclid(a, c).max(f64::EPSILON) * factor;
                    b.add_edge(NodeId::from_index(a), NodeId::from_index(c), w)
                        .expect("valid extra edge");
                }
            }
            b.build().expect("non-empty graph")
        })
}

/// A batch of requests with unique client ids; endpoints and protection
/// demands are arbitrary (including infeasible ones — rejections must be
/// identical across cache policies too).
fn arb_batch(max_requests: usize) -> impl Strategy<Value = Vec<(u32, u32, u32, u32)>> {
    proptest::collection::vec(
        (proptest::num::u32::ANY, proptest::num::u32::ANY, 1u32..5, 1u32..5),
        1..max_requests,
    )
}

/// Interleaved churn: between consecutive batches, a round of raw
/// `(edge, weight)` updates (edge picks are taken modulo the edge count;
/// repeats and no-op rewrites are all legal traffic).
fn arb_churn() -> impl Strategy<Value = Vec<Vec<(u32, f64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((proptest::num::u32::ANY, 0.5f64..5.0), 1..6),
        1..4,
    )
}

fn requests_on(map: &RoadNetwork, raw: &[(u32, u32, u32, u32)]) -> Vec<ClientRequest> {
    let n = map.num_nodes() as u32;
    raw.iter()
        .enumerate()
        .map(|(i, &(s, t, f_s, f_t))| {
            ClientRequest::new(
                ClientId(i as u32),
                PathQuery::new(NodeId(s % n), NodeId(t % n)),
                ProtectionSettings::new(f_s, f_t).expect("nonzero by construction"),
            )
        })
        .collect()
}

fn updates_on(map: &RoadNetwork, raw: &[(u32, f64)]) -> Vec<(EdgeId, f64)> {
    let m = map.edges().len() as u32;
    raw.iter().map(|&(e, w)| (EdgeId(e % m), w)).collect()
}

fn build_service(
    map: RoadNetwork,
    seed: u64,
    partition: PartitionPolicy,
    shards: usize,
    execution: ExecutionPolicy,
    cache: CachePolicy,
) -> opaque::OpaqueService<opaque::DefaultBackend> {
    ServiceBuilder::new()
        .map(map)
        .seed(seed)
        .shards(shards)
        .obfuscation_mode(ObfuscationMode::Independent)
        .sharing_policy(SharingPolicy::Auto)
        .partition_policy(partition)
        .execution_policy(execution)
        .cache_policy(cache)
        .verify_results(true)
        .build()
        .expect("valid configuration")
}

/// The equivalence oracle: every observable piece of a batch's output.
fn assert_identical(a: &ServiceResponse, b: &ServiceResponse, ctx: &str) {
    assert_eq!(a.outcomes, b.outcomes, "{ctx}: per-client outcomes diverged");
    assert_eq!(a.results.len(), b.results.len(), "{ctx}: delivery count diverged");
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x.client, y.client, "{ctx}: delivery order diverged");
        assert_eq!(x.path, y.path, "{ctx}: delivered path diverged for {:?}", x.client);
    }
    let a_json = serde_json::to_string(&a.report).expect("report serializes");
    let b_json = serde_json::to_string(&b.report).expect("report serializes");
    assert_eq!(a_json, b_json, "{ctx}: BatchReport not byte-identical");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn cached_service_under_churn_is_byte_identical_to_fresh_recompute(
        map in arb_map(30),
        raw_batch in arb_batch(8),
        raw_churn in arb_churn(),
        seed in proptest::num::u64::ANY,
        trees in 1usize..10,
        exec_pick in 0u8..2,
        part_pick in 0u8..2,
    ) {
        let execution = match exec_pick {
            0 => ExecutionPolicy::Sequential,
            _ => ExecutionPolicy::WorkerPool { threads: 3 },
        };
        let partition = match part_pick {
            0 => PartitionPolicy::RoundRobin,
            _ => PartitionPolicy::RegionOwned { halo: 1 },
        };
        let requests = requests_on(&map, &raw_batch);
        // The reference recomputes every tree fresh on whatever the map
        // currently is; the cached service must match it byte-for-byte
        // through every interleaved weight update.
        let mut off = build_service(
            map.clone(), seed, PartitionPolicy::RoundRobin, 3,
            ExecutionPolicy::Sequential, CachePolicy::Off,
        );
        let mut lru = build_service(
            map.clone(), seed, partition, 3, execution, CachePolicy::Lru { trees },
        );

        // One batch before the first churn round (populating the caches),
        // one after each round (re-adopting survivors on the new map).
        for (round, raw) in raw_churn.iter().map(Some).chain([None]).enumerate() {
            let ctx = format!(
                "n={} requests={} seed={seed} trees={trees} execution={execution:?} \
                 partition={partition:?} round={round}",
                map.num_nodes(),
                requests.len()
            );
            match (off.process_batch(&requests), lru.process_batch(&requests)) {
                (Ok(a), Ok(b)) => assert_identical(&a, &b, &ctx),
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "{}: errors diverged", ctx),
                (a, b) => prop_assert!(
                    false,
                    "{}: one service failed, the other did not: {:?} vs {:?}",
                    ctx,
                    a.map(|r| r.outcomes),
                    b.map(|r| r.outcomes)
                ),
            }
            if let Some(raw) = raw {
                let updates = updates_on(&map, raw);
                let changed_off = off.update_weights(&updates).expect("valid updates");
                let changed_lru = lru.update_weights(&updates).expect("valid updates");
                prop_assert_eq!(changed_off, changed_lru, "{}: changed-edge sets diverged", ctx);
            }
        }
    }
}

/// Deterministic stale-adoption pin on a 12-node ring. With no fakes
/// (protection 1/1) the delivered path is the true shortest path, and the
/// ring gives the query exactly two candidate routes — so when churn
/// flips which side is shorter, a stale cached tree would deliver the
/// *old* side verbatim. The warm cache must deliver the new detour.
#[test]
fn a_trace_touching_an_updated_edge_is_never_adopted() {
    const N: u32 = 12;
    let mut b = GraphBuilder::new();
    for i in 0..N {
        let theta = f64::from(i) / f64::from(N) * std::f64::consts::TAU;
        b.add_node(Point::new(theta.cos(), theta.sin())).unwrap();
    }
    for i in 0..N {
        b.add_edge(NodeId(i), NodeId((i + 1) % N), 1.0).unwrap();
    }
    let map = b.build().unwrap();
    let requests = vec![ClientRequest::new(
        ClientId(0),
        PathQuery::new(NodeId(0), NodeId(5)),
        ProtectionSettings::new(1, 1).unwrap(),
    )];
    let mut lru = build_service(
        map.clone(),
        7,
        PartitionPolicy::RoundRobin,
        1,
        ExecutionPolicy::Sequential,
        CachePolicy::Lru { trees: 8 },
    );
    let mut off = build_service(
        map.clone(),
        7,
        PartitionPolicy::RoundRobin,
        1,
        ExecutionPolicy::Sequential,
        CachePolicy::Off,
    );

    let short_way: Vec<NodeId> = (0..=5).map(NodeId).collect();
    let long_way: Vec<NodeId> = [0, 11, 10, 9, 8, 7, 6, 5].map(NodeId).to_vec();

    // Rounds 1 and 2: the short side wins; round 2 runs on a warm cache.
    for round in 0..2 {
        let a = off.process_batch(&requests).unwrap();
        let b = lru.process_batch(&requests).unwrap();
        assert_identical(&a, &b, &format!("pre-churn round {round}"));
        assert_eq!(b.results[0].path.nodes(), short_way.as_slice());
    }
    let warmed = lru.backend().stats();
    assert!(warmed.tree_cache_hits > 0, "round 2 must adopt the cached tree");

    // Rush hour on edge (2,3): the cached tree settled both endpoints, so
    // it must be evicted — a stale adoption would re-deliver the short way.
    let congested = map
        .edges()
        .iter()
        .position(|e| (e.a, e.b) == (NodeId(2), NodeId(3)) || (e.a, e.b) == (NodeId(3), NodeId(2)))
        .map(EdgeId::from_index)
        .expect("ring contains edge (2,3)");
    let updates = [(congested, 10.0)];
    assert_eq!(off.update_weights(&updates).unwrap(), vec![congested]);
    assert_eq!(lru.update_weights(&updates).unwrap(), vec![congested]);

    let a = off.process_batch(&requests).unwrap();
    let b = lru.process_batch(&requests).unwrap();
    assert_identical(&a, &b, "post-churn round");
    assert_eq!(
        b.results[0].path.nodes(),
        long_way.as_slice(),
        "the warm cache must deliver the post-churn detour, not the cached short way"
    );
    let after = lru.backend().stats();
    assert_eq!(
        after.tree_cache_hits, warmed.tree_cache_hits,
        "the touched tree was evicted, so the post-churn batch cannot hit"
    );
}
