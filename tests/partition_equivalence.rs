//! The partition layer's headline guarantee, as a property: region-owned
//! placement is **invisible to every observable byte**. For random maps,
//! random batches, random obfuscator seeds, random halos, and any
//! worker-pool width, `PartitionPolicy::RegionOwned` produces the same
//! delivered paths, the same per-client outcomes, the same serialized
//! `BatchReport`, the same gateway `ServiceEvent` stream, and the same
//! fleet-merged server counters as `PartitionPolicy::RoundRobin` and as
//! single-threaded sequential execution — across `CachePolicy::{Off,Lru}`.
//!
//! Routing may only move units between shards; every shard searches the
//! whole (Arc-shared) map, each MSMD evaluation is a pure function of
//! `(map, query, sharing policy)`, and reports read only fleet-merged
//! commutative counters — so any divergence this harness could catch
//! would be a real routing leak (a unit dropped or answered twice at a
//! region boundary, stats landing outside the merge, order-dependent
//! accounting).
//!
//! The deterministic regression tests at the bottom pin the boundary
//! cases: pairs straddling partition cuts (resolved via the halo, and via
//! the fallback when the span exceeds it), directed maps, and
//! disconnected components — always against a whole-map single-shard
//! oracle, asserting zero *new* `Unreachable` outcomes.

use opaque::{
    CachePolicy, ClientId, ClientOutcome, ClientRequest, DirectionsBackend, DirectionsServer,
    ExecutionPolicy, ObfuscatedPathQuery, Partition, PartitionPolicy, PathQuery,
    ProtectionSettings, RouteKind, ServiceBuilder, ServiceResponse, ShardedBackend,
};
use pathsearch::SharingPolicy;
use proptest::prelude::*;
use roadnet::{GraphBuilder, NodeId, Point, RoadNetwork};
use std::sync::Arc;

/// Random connected road map: a random spanning tree plus extra random
/// edges (parallel roads allowed), positive weights.
fn arb_map(max_nodes: usize) -> impl Strategy<Value = RoadNetwork> {
    (4..max_nodes)
        .prop_flat_map(|n| {
            let coords = proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), n);
            let parents = proptest::collection::vec(proptest::num::u32::ANY, n - 1);
            let extra = proptest::collection::vec((0..n as u32, 0..n as u32, 1.0f64..3.0), 0..n);
            (coords, parents, extra)
        })
        .prop_map(|(coords, parents, extra)| {
            let mut b = GraphBuilder::new();
            for (x, y) in &coords {
                b.add_node(Point::new(*x, *y)).expect("finite coords");
            }
            let n = coords.len();
            let euclid = |a: usize, c: usize| {
                Point::new(coords[a].0, coords[a].1).distance(Point::new(coords[c].0, coords[c].1))
            };
            for (i, p) in parents.iter().enumerate() {
                let child = i + 1;
                let parent = (*p as usize) % child;
                let w = euclid(parent, child).max(f64::EPSILON) * 1.1;
                b.add_edge(NodeId::from_index(parent), NodeId::from_index(child), w)
                    .expect("valid tree edge");
            }
            for (a, c, factor) in extra {
                let (a, c) = (a as usize % n, c as usize % n);
                if a != c {
                    let w = euclid(a, c).max(f64::EPSILON) * factor;
                    b.add_edge(NodeId::from_index(a), NodeId::from_index(c), w)
                        .expect("valid extra edge");
                }
            }
            b.build().expect("non-empty graph")
        })
}

fn arb_batch(max_requests: usize) -> impl Strategy<Value = Vec<(u32, u32, u32, u32)>> {
    proptest::collection::vec(
        (proptest::num::u32::ANY, proptest::num::u32::ANY, 1u32..5, 1u32..5),
        1..max_requests,
    )
}

fn requests_on(map: &RoadNetwork, raw: &[(u32, u32, u32, u32)]) -> Vec<ClientRequest> {
    let n = map.num_nodes() as u32;
    raw.iter()
        .enumerate()
        .map(|(i, &(s, t, f_s, f_t))| {
            ClientRequest::new(
                ClientId(i as u32),
                PathQuery::new(NodeId(s % n), NodeId(t % n)),
                ProtectionSettings::new(f_s, f_t).expect("nonzero by construction"),
            )
        })
        .collect()
}

fn build_service(
    map: RoadNetwork,
    seed: u64,
    shards: usize,
    partition: PartitionPolicy,
    execution: ExecutionPolicy,
    cache: CachePolicy,
) -> opaque::OpaqueService<opaque::DefaultBackend> {
    ServiceBuilder::new()
        .map(map)
        .seed(seed)
        .shards(shards)
        .partition_policy(partition)
        .execution_policy(execution)
        .cache_policy(cache)
        .verify_results(true)
        .build()
        .expect("valid configuration")
}

/// The equivalence oracle: every observable piece of a batch's output.
fn assert_identical(a: &ServiceResponse, b: &ServiceResponse, ctx: &str) {
    assert_eq!(a.outcomes, b.outcomes, "{ctx}: per-client outcomes diverged");
    assert_eq!(a.results.len(), b.results.len(), "{ctx}: delivery count diverged");
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x.client, y.client, "{ctx}: delivery order diverged");
        assert_eq!(x.path, y.path, "{ctx}: delivered path diverged for {:?}", x.client);
    }
    let a_json = serde_json::to_string(&a.report).expect("report serializes");
    let b_json = serde_json::to_string(&b.report).expect("report serializes");
    assert_eq!(a_json, b_json, "{ctx}: BatchReport not byte-identical");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// RegionOwned ≡ RoundRobin ≡ Sequential, byte for byte, over
    /// multi-batch streams (the obfuscator RNG advances, shard counters
    /// and caches accumulate — equivalence must hold at every step).
    #[test]
    fn region_owned_is_byte_identical_to_round_robin_and_sequential(
        map in arb_map(40),
        raw_batch in arb_batch(10),
        seed in proptest::num::u64::ANY,
        halo in 0u32..4,
        shards_pick in 2usize..6,
        threads_pick in 1usize..9,
        cache_pick in 0u8..2,
    ) {
        let shards = shards_pick.min(map.num_nodes());
        let threads = threads_pick.clamp(1, shards);
        let cache = match cache_pick {
            0 => CachePolicy::Off,
            _ => CachePolicy::Lru { trees: 4 },
        };
        let requests = requests_on(&map, &raw_batch);
        let ctx = format!(
            "n={} requests={} seed={seed} shards={shards} halo={halo} threads={threads} cache={cache:?}",
            map.num_nodes(),
            requests.len()
        );

        // The reference: round-robin, sequential, cache off — the
        // historical pipeline every prior oracle is pinned to.
        let mut reference = build_service(
            map.clone(), seed, shards,
            PartitionPolicy::RoundRobin, ExecutionPolicy::Sequential, CachePolicy::Off,
        );
        // Region-owned, sequential.
        let mut region_seq = build_service(
            map.clone(), seed, shards,
            PartitionPolicy::RegionOwned { halo }, ExecutionPolicy::Sequential, cache,
        );
        // Region-owned, worker pool pulling from per-shard queues.
        let mut region_pool = build_service(
            map.clone(), seed, shards,
            PartitionPolicy::RegionOwned { halo },
            ExecutionPolicy::WorkerPool { threads }, cache,
        );

        for round in 0..2 {
            let rctx = format!("{ctx} round={round}");
            match (
                reference.process_batch(&requests),
                region_seq.process_batch(&requests),
                region_pool.process_batch(&requests),
            ) {
                (Ok(a), Ok(b), Ok(c)) => {
                    assert_identical(&a, &b, &format!("{rctx} [rr/seq vs region/seq]"));
                    assert_identical(&a, &c, &format!("{rctx} [rr/seq vs region/pool]"));
                }
                (Err(a), Err(b), Err(c)) => {
                    prop_assert_eq!(&a, &b, "{}: errors diverged", rctx);
                    prop_assert_eq!(&a, &c, "{}: errors diverged", rctx);
                }
                (a, b, c) => prop_assert!(
                    false,
                    "{}: policies disagreed on failure: {:?} / {:?} / {:?}",
                    rctx, a.is_ok(), b.is_ok(), c.is_ok()
                ),
            }
        }
        // Fleet-merged cumulative counters agree as well: the commutative
        // merge erases placement entirely. The two physical cache
        // counters are the one deliberate exception — they are off every
        // report and *should* move with cache policy and placement (that
        // is the whole payoff) — so normalize them before comparing
        // across the cache-off reference.
        let logical = |mut s: opaque::ServerStats| {
            s.tree_cache_hits = 0;
            s.tree_cache_misses = 0;
            s
        };
        prop_assert_eq!(
            logical(reference.backend().stats()),
            logical(region_seq.backend().stats()),
            "{}: fleet stats diverged (sequential)",
            ctx
        );
        prop_assert_eq!(
            logical(reference.backend().stats()),
            logical(region_pool.backend().stats()),
            "{}: fleet stats diverged (pool)",
            ctx
        );
        // Same cache policy and same routing ⇒ even the physical cache
        // counters agree between sequential and pooled execution.
        prop_assert_eq!(
            region_seq.backend().stats(),
            region_pool.backend().stats(),
            "{}: region fleets diverged across pool widths",
            ctx
        );
    }

    /// The gateway view of the same guarantee: the full `ServiceEvent`
    /// stream — per-request deliveries with their hop-4 `ResultMsg`
    /// payloads, unreachable/rejection events, trailing `BatchFlushed`
    /// reports — serializes byte-identically across placement policies.
    #[test]
    fn gateway_event_streams_are_byte_identical_across_placement(
        map in arb_map(30),
        raw_batch in arb_batch(8),
        seed in proptest::num::u64::ANY,
        halo in 0u32..3,
        max_batch in 1usize..5,
    ) {
        let shards = 3usize.min(map.num_nodes());
        let drive = |partition: PartitionPolicy, execution: ExecutionPolicy| {
            let mut svc = ServiceBuilder::new()
                .map(map.clone())
                .seed(seed)
                .shards(shards)
                .partition_policy(partition)
                .execution_policy(execution)
                .verify_results(true)
                .batch_policy(opaque::BatchPolicy { max_batch, max_delay: 1e6 })
                .build()
                .expect("valid configuration");
            let mut events = Vec::new();
            for (i, request) in requests_on(&map, &raw_batch).into_iter().enumerate() {
                let now = i as f64 * 0.25;
                assert!(svc.submit(request, now).ticket().is_some(), "gateway admits the request");
                events.extend(svc.tick(now).expect("pipeline succeeds"));
            }
            let mut clock = raw_batch.len() as f64 * 0.25;
            while svc.pending() > 0 {
                events.extend(svc.flush(clock).expect("pipeline succeeds"));
                clock += 0.25;
            }
            serde_json::to_string(&events).expect("events serialize")
        };

        let ctx = format!("n={} seed={seed} halo={halo} max_batch={max_batch}", map.num_nodes());
        let reference = drive(PartitionPolicy::RoundRobin, ExecutionPolicy::Sequential);
        let region_seq =
            drive(PartitionPolicy::RegionOwned { halo }, ExecutionPolicy::Sequential);
        let region_pool = drive(
            PartitionPolicy::RegionOwned { halo },
            ExecutionPolicy::WorkerPool { threads: shards },
        );
        prop_assert_eq!(&reference, &region_seq, "{}: event stream diverged (sequential)", ctx);
        prop_assert_eq!(&reference, &region_pool, "{}: event stream diverged (pool)", ctx);
    }

    /// Routing conservation at the backend boundary: every unit of a
    /// batch is answered exactly once (`process_many` returns one slot
    /// per unit in unit order, per-shard query counters sum to the batch
    /// size) and each answer equals the whole-map single-server oracle.
    #[test]
    fn every_unit_is_answered_exactly_once_at_the_routing_boundary(
        map in arb_map(30),
        raw_units in proptest::collection::vec(
            (proptest::num::u32::ANY, proptest::num::u32::ANY, 1u32..4, 1u32..4), 1..12),
        halo in 0u32..3,
        threads in 1usize..6,
    ) {
        let n = map.num_nodes() as u32;
        let units: Vec<ObfuscatedPathQuery> = raw_units
            .iter()
            .map(|&(s, t, f_s, f_t)| {
                let sources: Vec<NodeId> = (0..f_s).map(|k| NodeId((s.wrapping_add(k * 7)) % n)).collect();
                let targets: Vec<NodeId> = (0..f_t).map(|k| NodeId((t.wrapping_add(k * 11)) % n)).collect();
                ObfuscatedPathQuery::new(sources, targets)
            })
            .collect();

        let shards = 4usize.min(map.num_nodes());
        let shared = Arc::new(map.clone());
        let fleet: Vec<DirectionsServer<Arc<RoadNetwork>>> = (0..shards)
            .map(|_| DirectionsServer::new(Arc::clone(&shared), SharingPolicy::PerSource))
            .collect();
        let partition = Partition::build(&shared, shards, halo).expect("valid partition");
        let mut routed = ShardedBackend::with_partition(fleet, partition).expect("fleet matches");

        let mut oracle = DirectionsServer::new(Arc::clone(&shared), SharingPolicy::PerSource);
        let expected: Vec<_> = units.iter().map(|q| oracle.process(q)).collect();

        let threads = threads.clamp(1, shards);
        let answers = routed.process_many(&units, ExecutionPolicy::WorkerPool { threads });
        prop_assert_eq!(answers.len(), units.len(), "one answer per unit");
        for (i, (a, e)) in answers.iter().zip(&expected).enumerate() {
            prop_assert_eq!(&a.paths, &e.paths, "unit {} diverged from the whole-map oracle", i);
            prop_assert_eq!(&a.stats, &e.stats, "unit {} counters diverged", i);
        }
        // Conservation: the fleet served exactly the batch, no unit lost
        // or duplicated across the per-shard queues.
        let served: u64 = routed
            .shards()
            .iter()
            .map(|s| DirectionsBackend::stats(s).obfuscated_queries)
            .sum();
        prop_assert_eq!(served, units.len() as u64);
        prop_assert_eq!(routed.stats().obfuscated_queries, units.len() as u64);
    }
}

// ---------------------------------------------------------------------------
// Boundary-straddle regressions: deterministic cut-crossing cases against
// a whole-map single-shard oracle.

/// A 10-node path — every partition of it has an obvious cut.
fn path_map(len: u32) -> RoadNetwork {
    let mut b = GraphBuilder::new();
    for i in 0..len {
        b.add_node(Point::new(i as f64, 0.0)).unwrap();
    }
    for i in 0..len - 1 {
        b.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
    }
    b.build().unwrap()
}

/// Batch the same requests through a region-owned fleet and a whole-map
/// single-shard oracle; everything observable must match (in particular:
/// zero unreachable outcomes the oracle does not also report).
fn assert_matches_whole_map_oracle(map: &RoadNetwork, requests: &[ClientRequest], halo: u32) {
    let shards = 4.min(map.num_nodes());
    let mut region = build_service(
        map.clone(),
        7,
        shards,
        PartitionPolicy::RegionOwned { halo },
        ExecutionPolicy::WorkerPool { threads: shards },
        CachePolicy::Lru { trees: 8 },
    );
    let mut oracle = build_service(
        map.clone(),
        7,
        1,
        PartitionPolicy::RoundRobin,
        ExecutionPolicy::Sequential,
        CachePolicy::Off,
    );
    let a = region.process_batch(requests).expect("region-owned batch succeeds");
    let b = oracle.process_batch(requests).expect("oracle batch succeeds");
    assert_identical(&a, &b, &format!("halo={halo} vs whole-map oracle"));
    let region_unreachable =
        a.outcomes.iter().filter(|(_, o)| matches!(o, ClientOutcome::Unreachable)).count();
    let oracle_unreachable =
        b.outcomes.iter().filter(|(_, o)| matches!(o, ClientOutcome::Unreachable)).count();
    assert_eq!(
        region_unreachable, oracle_unreachable,
        "partitioning must never create a new Unreachable"
    );
}

#[test]
fn cut_straddling_pairs_resolve_via_the_halo() {
    let map = path_map(16);
    // The service's internal partition is deterministic, so a fresh build
    // with the same parameters reproduces it exactly — use it to find the
    // cuts and to classify each pair's routing.
    let partition = Partition::build(&map, 4, 1).unwrap();
    let cuts: Vec<u32> = (0..15)
        .filter(|&i| partition.owner_of(NodeId(i)) != partition.owner_of(NodeId(i + 1)))
        .collect();
    assert!(!cuts.is_empty(), "four regions on a path must have cuts");
    let mut kinds = Vec::new();
    let mut requests = Vec::new();
    for (i, &cut) in cuts.iter().enumerate() {
        // One-hop straddle: both ends inside a 1-hop halo of the cut.
        let q = ObfuscatedPathQuery::new(vec![NodeId(cut)], vec![NodeId(cut + 1)]);
        kinds.push(partition.route_explain(&q).1);
        requests.push(ClientRequest::new(
            ClientId(i as u32),
            PathQuery::new(NodeId(cut), NodeId(cut + 1)),
            ProtectionSettings::new(2, 2).unwrap(),
        ));
    }
    assert!(
        kinds.iter().all(|k| matches!(k, RouteKind::Halo | RouteKind::Owner)),
        "one-hop straddles must resolve without the fallback: {kinds:?}"
    );
    assert_matches_whole_map_oracle(&map, &requests, 1);
}

#[test]
fn spans_exceeding_the_halo_use_the_fallback_and_stay_answerable() {
    let map = path_map(16);
    let partition = Partition::build(&map, 4, 1).unwrap();
    // End to end across all four regions: no 1-hop coverage spans this.
    let q = ObfuscatedPathQuery::new(vec![NodeId(0), NodeId(1)], vec![NodeId(15)]);
    let (shard, kind) = partition.route_explain(&q);
    assert_eq!(kind, RouteKind::Fallback, "a whole-path span exceeds any 1-hop halo");
    assert!(shard < 4);
    let requests = vec![
        ClientRequest::new(
            ClientId(0),
            PathQuery::new(NodeId(0), NodeId(15)),
            ProtectionSettings::new(2, 1).unwrap(),
        ),
        ClientRequest::new(
            ClientId(1),
            PathQuery::new(NodeId(15), NodeId(0)),
            ProtectionSettings::new(1, 2).unwrap(),
        ),
    ];
    assert_matches_whole_map_oracle(&map, &requests, 1);
    // And a zero-hop halo forces even adjacent straddles through the
    // fallback — still answerable, still oracle-identical.
    assert_matches_whole_map_oracle(&map, &requests, 0);
}

#[test]
fn directed_maps_stay_oracle_identical_under_region_routing() {
    // A one-way avenue ring with two-way side streets: asymmetric
    // reachability, so directed sweeps cross region cuts in one
    // direction only.
    let mut b = GraphBuilder::directed();
    for i in 0..12 {
        b.add_node(Point::new((i % 6) as f64, (i / 6) as f64)).unwrap();
    }
    for i in 0..6u32 {
        b.add_edge(NodeId(i), NodeId((i + 1) % 6), 1.0).unwrap(); // one-way ring
        let side = i + 6;
        b.add_edge(NodeId(i), NodeId(side), 1.0).unwrap(); // out to the side street
        b.add_edge(NodeId(side), NodeId(i), 1.0).unwrap(); // and back
    }
    let map = b.build().unwrap();
    let requests: Vec<ClientRequest> = (0..12u32)
        .map(|i| {
            ClientRequest::new(
                ClientId(i),
                PathQuery::new(NodeId(i % 12), NodeId((i * 5 + 3) % 12)),
                ProtectionSettings::new(2, 2).unwrap(),
            )
        })
        .collect();
    for halo in [0, 1, 2] {
        assert_matches_whole_map_oracle(&map, &requests, halo);
    }
}

#[test]
fn disconnected_components_add_no_new_unreachable_outcomes() {
    // Two disjoint paths: cross-component pairs are unreachable on the
    // whole map; partitioning must report exactly the same set, never
    // more (a unit routed "to the wrong island" still searches the whole
    // map, so only true disconnection shows through).
    let mut b = GraphBuilder::new();
    for i in 0..10 {
        b.add_node(Point::new(i as f64, 0.0)).unwrap();
    }
    for i in 0..4u32 {
        b.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        b.add_edge(NodeId(i + 5), NodeId(i + 6), 1.0).unwrap();
    }
    let map = b.build().unwrap();
    let mut requests = Vec::new();
    for (i, (s, t)) in [(0u32, 4u32), (5, 9), (0, 9), (7, 2), (3, 3), (8, 1)].iter().enumerate() {
        requests.push(ClientRequest::new(
            ClientId(i as u32),
            PathQuery::new(NodeId(*s), NodeId(*t)),
            ProtectionSettings::new(2, 2).unwrap(),
        ));
    }
    for halo in [0, 1, 3] {
        assert_matches_whole_map_oracle(&map, &requests, halo);
    }
}
