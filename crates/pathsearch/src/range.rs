//! Bounded-radius (range) search: enumerate every node within a given
//! *network* distance of a source.
//!
//! The Euclidean ring used by the obfuscator's geometric strategy is only a
//! proxy — Lemma 1's cost bound is in network distance, and on networks
//! with detours the two can disagree badly. Range search gives the
//! obfuscator the exact tool: the set of candidate fakes whose network
//! distance from the anchor lies in a chosen band.

use crate::stats::SearchStats;
use roadnet::{GraphView, NodeId};
use std::collections::BinaryHeap;

#[derive(Clone, Copy)]
struct HeapEntry {
    d: f64,
    node: NodeId,
}
impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.d == other.d && self.node == other.node
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.d.total_cmp(&self.d).then_with(|| other.node.0.cmp(&self.node.0))
    }
}

/// All nodes with network distance ≤ `radius` from `source` (including the
/// source at distance 0), in ascending distance order, plus run counters.
///
/// Cost is proportional to the ball's area — `O(radius²)` on road networks —
/// independent of total network size.
pub fn range_search<G: GraphView>(
    g: &G,
    source: NodeId,
    radius: f64,
) -> (Vec<(NodeId, f64)>, SearchStats) {
    assert!(source.index() < g.num_nodes(), "source out of range");
    assert!(radius >= 0.0 && radius.is_finite(), "radius must be finite and non-negative");
    let mut stats = SearchStats::one_run();

    // Local hash-based labels keep the cost output-sensitive: no O(n)
    // allocation for what is usually a small ball.
    let mut dist: std::collections::HashMap<NodeId, f64> = std::collections::HashMap::new();
    let mut settled: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    let mut heap = BinaryHeap::new();
    let mut out = Vec::new();

    dist.insert(source, 0.0);
    heap.push(HeapEntry { d: 0.0, node: source });
    stats.heap_pushes += 1;

    while let Some(HeapEntry { d, node }) = heap.pop() {
        stats.heap_pops += 1;
        if d > radius {
            break; // every remaining label is farther
        }
        if !settled.insert(node) {
            continue;
        }
        stats.settled += 1;
        out.push((node, d));
        g.for_each_arc(node, &mut |to, w| {
            stats.relaxed += 1;
            let cand = d + w;
            if cand <= radius {
                let better = dist.get(&to).is_none_or(|&old| cand < old);
                if better && !settled.contains(&to) {
                    dist.insert(to, cand);
                    heap.push(HeapEntry { d: cand, node: to });
                    stats.heap_pushes += 1;
                }
            }
        });
    }
    (out, stats)
}

/// Nodes whose network distance from `source` lies in `[lo, hi]`, ascending
/// by distance.
pub fn ring_search<G: GraphView>(
    g: &G,
    source: NodeId,
    lo: f64,
    hi: f64,
) -> (Vec<(NodeId, f64)>, SearchStats) {
    assert!(lo >= 0.0 && hi >= lo, "invalid ring bounds");
    let (ball, stats) = range_search(g, source, hi);
    let ring = ball.into_iter().filter(|&(_, d)| d >= lo).collect();
    (ring, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::{Goal, Searcher};
    use roadnet::generators::{GridConfig, grid_network};

    fn net() -> roadnet::RoadNetwork {
        grid_network(&GridConfig { width: 14, height: 14, seed: 6, ..Default::default() }).unwrap()
    }

    #[test]
    fn range_matches_full_dijkstra_labels() {
        let g = net();
        let source = NodeId(90);
        let radius = 4.0;
        let (ball, _) = range_search(&g, source, radius);
        let mut searcher = Searcher::new();
        searcher.run(&g, source, &Goal::AllNodes);
        // Every returned node has the exact Dijkstra distance…
        for &(n, d) in &ball {
            let truth = searcher.distance(n).unwrap();
            assert!((d - truth).abs() < 1e-9, "node {n}: {d} vs {truth}");
            assert!(d <= radius);
        }
        // …and no in-range node is missing.
        let in_ball: std::collections::HashSet<NodeId> = ball.iter().map(|&(n, _)| n).collect();
        for n in g.nodes() {
            if searcher.distance(n).unwrap() <= radius {
                assert!(in_ball.contains(&n), "missing node {n}");
            }
        }
    }

    #[test]
    fn output_is_sorted_by_distance_and_starts_at_source() {
        let g = net();
        let (ball, _) = range_search(&g, NodeId(0), 3.0);
        assert_eq!(ball[0], (NodeId(0), 0.0));
        for w in ball.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn zero_radius_returns_only_source() {
        let g = net();
        let (ball, stats) = range_search(&g, NodeId(5), 0.0);
        assert_eq!(ball, vec![(NodeId(5), 0.0)]);
        assert_eq!(stats.settled, 1);
    }

    #[test]
    fn cost_is_output_sensitive() {
        let g = grid_network(&GridConfig { width: 40, height: 40, seed: 1, ..Default::default() })
            .unwrap();
        let (_, small) = range_search(&g, NodeId(820), 2.0);
        let (_, large) = range_search(&g, NodeId(820), 10.0);
        assert!(small.settled * 4 < large.settled, "{} vs {}", small.settled, large.settled);
        assert!((large.settled as usize) < g.num_nodes());
    }

    #[test]
    fn ring_filters_lower_bound() {
        let g = net();
        let (ring, _) = ring_search(&g, NodeId(90), 2.0, 4.0);
        assert!(!ring.is_empty());
        for &(_, d) in &ring {
            assert!((2.0..=4.0).contains(&d));
        }
    }

    #[test]
    #[should_panic(expected = "invalid ring bounds")]
    fn inverted_ring_panics() {
        let g = net();
        let _ = ring_search(&g, NodeId(0), 5.0, 1.0);
    }
}
