//! The result-path type returned by every search algorithm.

use roadnet::{GraphView, NodeId};

/// A path `⟨(s, n₀), (n₀, n₁), … (n_y, t)⟩` (§III-A) with its total
/// distance. Stored as the node sequence from source to destination
/// inclusive; a trivial path (source == destination) has one node and
/// distance 0.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Path {
    nodes: Vec<NodeId>,
    distance: f64,
}

impl Path {
    /// Construct from a node sequence and precomputed distance.
    ///
    /// # Panics
    /// Panics if `nodes` is empty or the distance is negative/non-finite —
    /// both indicate a bug in the producing algorithm, not user input.
    pub fn new(nodes: Vec<NodeId>, distance: f64) -> Self {
        assert!(!nodes.is_empty(), "a path has at least its source node");
        assert!(distance.is_finite() && distance >= 0.0, "invalid path distance {distance}");
        Path { nodes, distance }
    }

    /// The trivial path from a node to itself.
    pub fn trivial(node: NodeId) -> Self {
        Path { nodes: vec![node], distance: 0.0 }
    }

    /// Source node.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Destination node.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("paths are non-empty")
    }

    /// Total path distance `‖s,t‖` when produced by a shortest-path search.
    pub fn distance(&self) -> f64 {
        self.distance
    }

    /// Node sequence, source first.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of edges (hops).
    pub fn num_edges(&self) -> usize {
        self.nodes.len() - 1
    }

    /// True when the path only consists of its source.
    pub fn is_trivial(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Check the path against a graph: every consecutive pair must be
    /// connected by an arc, and the stored distance must equal the sum of
    /// the *cheapest* connecting arcs within `eps`.
    ///
    /// Used by tests and by the candidate-result-path filter as a defence
    /// against a faulty (or tampering) server.
    pub fn verify<G: GraphView>(&self, g: &G, eps: f64) -> bool {
        let mut total = 0.0;
        for w in self.nodes.windows(2) {
            let (u, v) = (w[0], w[1]);
            let mut best = f64::INFINITY;
            g.for_each_arc(u, &mut |to, weight| {
                if to == v && weight < best {
                    best = weight;
                }
            });
            if !best.is_finite() {
                return false; // consecutive nodes not adjacent
            }
            total += best;
        }
        (total - self.distance).abs() <= eps * (1.0 + self.distance)
    }

    /// Reverse the path in place (valid on undirected networks).
    pub fn reverse(&mut self) {
        self.nodes.reverse();
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "path[{} → {}, {} edges, d={:.3}]",
            self.source(),
            self.destination(),
            self.num_edges(),
            self.distance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::{GraphBuilder, Point};

    fn line_graph() -> roadnet::RoadNetwork {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i as f64, 0.0)).unwrap();
        }
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 2.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 3.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn accessors() {
        let p = Path::new(vec![NodeId(0), NodeId(1), NodeId(2)], 3.0);
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.destination(), NodeId(2));
        assert_eq!(p.num_edges(), 2);
        assert_eq!(p.distance(), 3.0);
        assert!(!p.is_trivial());
    }

    #[test]
    fn trivial_path() {
        let p = Path::trivial(NodeId(5));
        assert!(p.is_trivial());
        assert_eq!(p.source(), p.destination());
        assert_eq!(p.distance(), 0.0);
        assert_eq!(p.num_edges(), 0);
    }

    #[test]
    fn verify_accepts_correct_path() {
        let g = line_graph();
        let p = Path::new(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)], 6.0);
        assert!(p.verify(&g, 1e-9));
    }

    #[test]
    fn verify_rejects_wrong_distance() {
        let g = line_graph();
        let p = Path::new(vec![NodeId(0), NodeId(1), NodeId(2)], 5.0); // true cost 3
        assert!(!p.verify(&g, 1e-9));
    }

    #[test]
    fn verify_rejects_non_adjacent_hop() {
        let g = line_graph();
        let p = Path::new(vec![NodeId(0), NodeId(2)], 3.0);
        assert!(!p.verify(&g, 1e-9));
    }

    #[test]
    fn reverse_swaps_endpoints() {
        let mut p = Path::new(vec![NodeId(0), NodeId(1), NodeId(2)], 3.0);
        p.reverse();
        assert_eq!(p.source(), NodeId(2));
        assert_eq!(p.destination(), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "at least its source")]
    fn empty_path_panics() {
        let _ = Path::new(vec![], 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid path distance")]
    fn negative_distance_panics() {
        let _ = Path::new(vec![NodeId(0)], -1.0);
    }

    #[test]
    fn display_is_informative() {
        let p = Path::new(vec![NodeId(0), NodeId(3)], 1.5);
        let s = p.to_string();
        assert!(s.contains("0 → 3") && s.contains("1 edges"));
    }
}
