//! Offline stand-in for `rand_chacha`: a genuine (if unoptimized) ChaCha
//! block function driving the vendored `rand` traits. Deterministic per
//! seed; stream layout does not match the upstream crate, which no code in
//! this workspace relies on.

use rand::{RngCore, SeedableRng};

/// ChaCha generator with a configurable round count.
#[derive(Clone, Debug)]
pub struct ChaChaRng<const ROUNDS: usize> {
    state: [u32; 16],
    buffer: [u32; 16],
    /// Next unread word of `buffer`; 16 means exhausted.
    cursor: usize,
}

/// 8-round variant.
pub type ChaCha8Rng = ChaChaRng<8>;
/// 12-round variant.
pub type ChaCha12Rng = ChaChaRng<12>;
/// 20-round variant.
pub type ChaCha20Rng = ChaChaRng<20>;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..(ROUNDS / 2) {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (out, base) in x.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*base);
        }
        self.buffer = x;
        self.cursor = 0;
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        // Expand the 64-bit seed into the 256-bit key via SplitMix.
        let mut s = seed;
        for word in state[4..12].iter_mut() {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *word = (z ^ (z >> 31)) as u32;
        }
        ChaChaRng { state, buffer: [0; 16], cursor: 16 }
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u64(&mut self) -> u64 {
        if self.cursor + 2 > 16 {
            self.refill();
        }
        let lo = self.buffer[self.cursor] as u64;
        let hi = self.buffer[self.cursor + 1] as u64;
        self.cursor += 2;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha20Rng::seed_from_u64(1);
        let mut b = ChaCha20Rng::seed_from_u64(1);
        let mut c = ChaCha20Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..40).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..40).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..40).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..100 {
            let x = rng.gen_range(0u32..10);
            assert!(x < 10);
        }
    }
}
