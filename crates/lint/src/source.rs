//! A lexed source file plus the two structural facts every rule needs:
//! which lines are test-only code, and which lines carry allow markers.
//!
//! ## Test regions
//!
//! R1 (determinism) and R3 (panic-path) apply to shipped code only —
//! tests are free to `unwrap()` and iterate whatever they like. A test
//! region is the body of any item annotated `#[test]` or with a `cfg`
//! attribute that mentions `test` (and not `not`): in this workspace
//! that is the conventional `#[cfg(test)] mod tests { … }` block at the
//! bottom of each file. Regions are tracked as line ranges; brace
//! matching runs on the token stream, so braces inside strings or
//! comments cannot derail it.
//!
//! ## Allow markers
//!
//! The escape hatch is a comment:
//!
//! ```text
//! // lint: allow(panic-path) — bounds checked three lines above
//! some_slice[i].do_thing();
//! ```
//!
//! A marker suppresses the named rules on the line it covers: the same
//! line for a trailing comment, otherwise the next code line below it.
//! The justification after the rule list is mandatory — a bare marker is
//! itself a violation (`allow-marker`) — and may continue across
//! following comment lines when one line is not enough.

use crate::lexer::{Tok, lex};

/// One allow marker parsed out of a comment.
#[derive(Clone, Debug)]
pub struct AllowMarker {
    /// Rule ids named inside `allow(...)`.
    pub rules: Vec<String>,
    /// Line of the marker comment itself.
    pub line: u32,
    /// The code line this marker suppresses.
    pub covered_line: u32,
    /// Whether a non-empty justification follows the rule list (same
    /// line or continuation comment lines).
    pub justified: bool,
}

/// A lexed file, its test-only line ranges, and its allow markers.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path, forward slashes.
    pub rel: String,
    /// The full token stream, comments included.
    pub toks: Vec<Tok>,
    /// Indices into `toks` of code tokens (comments stripped).
    pub code: Vec<usize>,
    /// Inclusive line ranges of test-only code.
    pub test_regions: Vec<(u32, u32)>,
    /// Allow markers, in file order.
    pub markers: Vec<AllowMarker>,
}

impl SourceFile {
    /// Lex and analyze one file.
    pub fn parse(rel: &str, src: &str) -> Self {
        let toks = lex(src);
        let code: Vec<usize> = (0..toks.len()).filter(|&i| toks[i].is_code()).collect();
        let test_regions = find_test_regions(&toks, &code);
        let markers = find_markers(&toks);
        SourceFile { rel: rel.to_string(), toks, code, test_regions, markers }
    }

    /// The code token at code-index `ci` (indices from [`SourceFile::code`]).
    pub fn ct(&self, ci: usize) -> &Tok {
        &self.toks[self.code[ci]]
    }

    /// Number of code tokens.
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// Is `line` inside a test-only region?
    pub fn in_test(&self, line: u32) -> bool {
        self.test_regions.iter().any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// Does a marker cover `line` for `rule`? (Justification is checked
    /// separately by the engine — an unjustified marker still suppresses,
    /// but reports its own violation, so a site is never double-flagged.)
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        self.markers.iter().any(|m| m.covered_line == line && m.rules.iter().any(|r| r == rule))
    }
}

/// Find bodies of `#[test]` / `#[cfg(test)]`-ish items as line ranges.
fn find_test_regions(toks: &[Tok], code: &[usize]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut ci = 0;
    while ci + 1 < code.len() {
        let t = &toks[code[ci]];
        if !(t.is_punct('#') && toks[code[ci + 1]].is_punct('[')) {
            ci += 1;
            continue;
        }
        // Scan the attribute body to its matching `]`.
        let start_line = t.line;
        let mut depth = 0usize;
        let mut j = ci + 1;
        let mut mentions_test = false;
        let mut mentions_not = false;
        while j < code.len() {
            let a = &toks[code[j]];
            if a.is_punct('[') {
                depth += 1;
            } else if a.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if a.is_ident("test") {
                mentions_test = true;
            } else if a.is_ident("not") {
                mentions_not = true;
            }
            j += 1;
        }
        if !mentions_test || mentions_not {
            ci = j + 1;
            continue;
        }
        // The annotated item's body: skip further attributes, then run to
        // the matching close brace (or a `;` for brace-less items).
        let mut k = j + 1;
        while k + 1 < code.len() && toks[code[k]].is_punct('#') && toks[code[k + 1]].is_punct('[') {
            let mut d = 0usize;
            k += 1;
            while k < code.len() {
                if toks[code[k]].is_punct('[') {
                    d += 1;
                } else if toks[code[k]].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        let mut braces = 0usize;
        let mut end_line = start_line;
        while k < code.len() {
            let b = &toks[code[k]];
            if b.is_punct('{') {
                braces += 1;
            } else if b.is_punct('}') {
                braces = braces.saturating_sub(1);
                if braces == 0 {
                    end_line = b.line;
                    break;
                }
            } else if b.is_punct(';') && braces == 0 {
                end_line = b.line;
                break;
            }
            end_line = b.line;
            k += 1;
        }
        regions.push((start_line, end_line));
        ci = k + 1;
    }
    regions
}

/// Parse allow markers — a `lint: allow` comment carrying a
/// parenthesized rule list and a justification — out of comment tokens.
fn find_markers(toks: &[Tok]) -> Vec<AllowMarker> {
    let mut markers = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_comment() {
            continue;
        }
        let Some(at) = t.text.find("lint: allow(") else { continue };
        let after = &t.text[at + "lint: allow(".len()..];
        let Some(close) = after.find(')') else { continue };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        // Justification: the rest of this comment line, or — for long
        // rationales — any following contiguous comment line.
        let mut justified = !strip_comment_decoration(&after[close + 1..]).is_empty();
        if !justified {
            for (expect_line, follow) in (t.line + 1..).zip(toks.iter().skip(i + 1)) {
                if !follow.is_comment() || follow.line != expect_line {
                    break;
                }
                if !strip_comment_decoration(&follow.text).is_empty() {
                    justified = true;
                    break;
                }
            }
        }
        // Covered line: this line if code shares it (trailing comment),
        // else the first code line below.
        let trailing = toks.iter().any(|c| c.is_code() && c.line == t.line);
        let covered_line = if trailing {
            t.line
        } else {
            toks.iter().skip(i + 1).find(|c| c.is_code()).map(|c| c.line).unwrap_or(t.line)
        };
        markers.push(AllowMarker { rules, line: t.line, covered_line, justified });
    }
    markers
}

/// Strip comment slashes, doc markers, block delimiters, and the em-dash
/// / colon separators that introduce a justification.
fn strip_comment_decoration(s: &str) -> String {
    s.trim_matches(|c: char| {
        c.is_whitespace() || matches!(c, '/' | '*' | '!' | '—' | '–' | '-' | ':' | '=')
    })
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let src = "fn shipped() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { y.unwrap(); }\n\
                   }\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.in_test(1));
        assert!(f.in_test(2) && f.in_test(5) && f.in_test(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let f = SourceFile::parse("x.rs", "#[cfg(not(test))]\nfn shipped() { x.unwrap(); }\n");
        assert!(!f.in_test(2));
    }

    #[test]
    fn cfg_all_test_counts_and_braces_in_strings_do_not_derail() {
        let src =
            "#[cfg(all(test, unix))]\nmod t {\n    const S: &str = \"}}}{{{\";\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.in_test(3));
        assert!(!f.in_test(5));
    }

    #[test]
    fn test_attribute_with_following_attributes() {
        let src = "#[test]\n#[ignore]\nfn slow() { body(); }\nfn shipped() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.in_test(3));
        assert!(!f.in_test(4));
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_the_semicolon() {
        let src = "#[cfg(test)]\nuse helpers::*;\nfn shipped() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.in_test(2));
        assert!(!f.in_test(3));
    }

    #[test]
    fn trailing_marker_covers_its_own_line() {
        let src = "fn f() {\n    x[0]; // lint: allow(panic-path) — length pinned above\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.markers.len(), 1);
        assert_eq!(f.markers[0].covered_line, 2);
        assert!(f.markers[0].justified);
        assert!(f.allowed(2, "panic-path"));
        assert!(!f.allowed(2, "hash-iter"));
    }

    #[test]
    fn standalone_marker_covers_the_next_code_line() {
        let src = "fn f() {\n    // lint: allow(hash-iter) — order folded through a sort below\n    for k in &m {\n    }\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.markers[0].covered_line, 3);
        assert!(f.allowed(3, "hash-iter"));
    }

    #[test]
    fn multi_line_justification_counts() {
        let src = "// lint: allow(panic-path)\n// the index is produced by position() two lines up,\n// so the element is present by construction\nlane.remove(pos);\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.markers.len(), 1);
        assert!(f.markers[0].justified, "continuation comment lines are the justification");
        assert_eq!(f.markers[0].covered_line, 4);
    }

    #[test]
    fn bare_marker_is_unjustified() {
        let src = "// lint: allow(panic-path)\nx.unwrap();\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.markers[0].justified);
        // It still suppresses (the marker itself is what gets reported).
        assert!(f.allowed(2, "panic-path"));
    }

    #[test]
    fn marker_with_two_rules() {
        let src = "// lint: allow(hash-iter, wall-clock) — diagnostics only, never serialized\nstuff();\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.markers[0].rules, vec!["hash-iter", "wall-clock"]);
    }

    #[test]
    fn marker_text_inside_a_string_is_ignored() {
        let src = "let s = \"lint: allow(panic-path) — not a real marker\";\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.markers.is_empty());
    }
}
