//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! Implements exactly the surface this workspace uses — [`Rng::gen_range`]
//! over integer and float ranges, [`Rng::gen`] for floats, seeded
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`]/`choose` — on top of
//! SplitMix64. The generator is deterministic per seed, which is all the
//! experiments require (reproducibility, not cryptographic quality; the
//! real rand's StdRng makes no cross-version stream guarantee either).

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample from the type's standard distribution (`f64`/`f32` in
    /// `[0, 1)`, full range for integers, fair coin for `bool`).
    fn gen<T>(&mut self) -> T
    where
        T: distributions::Standard,
    {
        T::sample_standard(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    //! Range and standard-distribution sampling.

    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Ranges that can produce a uniform sample.
    pub trait SampleRange<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Types with a canonical "standard" distribution.
    pub trait Standard: Sized {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl Standard for $t {
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let unit = f64::sample_standard(rng) as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    // Unit sample in [0, 1]: 53 random bits over 2^53 - 1.
                    let unit =
                        ((rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64) as $t;
                    lo + unit * (hi - lo)
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);

    impl Standard for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 random bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64). Statistical quality is
    /// ample for synthetic workloads and obfuscation sampling.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::RngCore;

    /// Random slice operations (`rand::seq::SliceRandom` subset).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-1.5f64..=2.5);
            assert!((-1.5..=2.5).contains(&y));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(xs.choose(&mut rng).is_some());
    }
}
