//! Synthetic road-network generators.
//!
//! The paper obtains its maps from TIGER/Line \[11\]; those files are not
//! available offline, so experiments run on seeded synthetic networks that
//! reproduce the structural properties the paper's claims depend on:
//!
//! * **planar-like, low degree** — road junctions connect 2–4 segments;
//! * **near-Euclidean weights** — segment cost is the straight-line distance
//!   scaled by a jitter factor ≥ 1 (detours), which keeps the Euclidean A*
//!   heuristic admissible and makes the `O(‖s,t‖²)` search-area cost model
//!   of Lemma 1 meaningful;
//! * **connectivity** — every generator returns one connected component.
//!
//! Three families are provided, to show results are not an artifact of one
//! topology: [`grid`] (Manhattan-style), [`geometric`] (random planar-ish
//! k-NN graph, closest to suburban TIGER tracts), and [`radial`]
//! (ring-and-spoke "old city"). A fourth generator, [`continent`], scales
//! the grid family to DIMACS-challenge node counts (10⁵–10⁶) by tiling
//! provinces joined by sparse highways; it is a deliberate *outlier* in
//! size and is not part of [`NetworkClass::ALL`] sweeps.

pub mod continent;
pub mod geometric;
pub mod grid;
pub mod radial;

pub use continent::{ContinentConfig, continent_network};
pub use geometric::{GeometricConfig, random_geometric};
pub use grid::{GridConfig, grid_network};
pub use radial::{RadialConfig, radial_city};

use crate::error::Result;
use crate::graph::RoadNetwork;

/// The three generator families, as a value — experiments sweep over this.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum NetworkClass {
    /// Manhattan-style grid with perturbed weights and random knockouts.
    Grid,
    /// Random geometric k-nearest-neighbour network.
    Geometric,
    /// Ring-and-spoke radial city.
    Radial,
}

impl NetworkClass {
    /// All classes, for sweeps.
    pub const ALL: [NetworkClass; 3] =
        [NetworkClass::Grid, NetworkClass::Geometric, NetworkClass::Radial];

    /// Short name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            NetworkClass::Grid => "grid",
            NetworkClass::Geometric => "geometric",
            NetworkClass::Radial => "radial",
        }
    }

    /// Generate a network of roughly `target_nodes` nodes with the family's
    /// default parameters and the given `seed`.
    pub fn generate(self, target_nodes: usize, seed: u64) -> Result<RoadNetwork> {
        match self {
            NetworkClass::Grid => {
                let side = (target_nodes as f64).sqrt().round().max(2.0) as usize;
                grid_network(&GridConfig {
                    width: side,
                    height: side,
                    seed,
                    ..GridConfig::default()
                })
            }
            NetworkClass::Geometric => random_geometric(&GeometricConfig {
                num_nodes: target_nodes.max(2),
                seed,
                ..GeometricConfig::default()
            }),
            NetworkClass::Radial => {
                // rings * spokes + 1 ≈ target. Keep the default spoke count.
                let cfg = RadialConfig::default();
                let rings = ((target_nodes.saturating_sub(1)) / cfg.spokes).max(1);
                radial_city(&RadialConfig { rings, seed, ..cfg })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_classes_generate_connected_admissible_networks() {
        for class in NetworkClass::ALL {
            let g = class.generate(400, 7).unwrap();
            assert!(g.num_nodes() >= 200, "{} too small: {}", class.name(), g.num_nodes());
            assert!(g.is_connected(), "{} disconnected", class.name());
            assert!(g.euclidean_admissible(1e-9), "{} weights below euclidean", class.name());
            let deg = g.avg_degree();
            assert!((1.5..=8.0).contains(&deg), "{} degree {deg} not road-like", class.name());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for class in NetworkClass::ALL {
            let a = class.generate(300, 42).unwrap();
            let b = class.generate(300, 42).unwrap();
            assert_eq!(a.num_nodes(), b.num_nodes());
            assert_eq!(a.num_edges(), b.num_edges());
            let ea: Vec<_> = a.edges().to_vec();
            let eb: Vec<_> = b.edges().to_vec();
            assert_eq!(ea, eb, "{} not deterministic", class.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = NetworkClass::Geometric.generate(300, 1).unwrap();
        let b = NetworkClass::Geometric.generate(300, 2).unwrap();
        // Same node count but different coordinates.
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_ne!(a.points()[0], b.points()[0]);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(NetworkClass::Grid.name(), "grid");
        assert_eq!(NetworkClass::Geometric.name(), "geometric");
        assert_eq!(NetworkClass::Radial.name(), "radial");
    }
}
