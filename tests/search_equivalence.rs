//! Property-based equivalence of all shortest-path algorithms.
//!
//! Strategy: generate random connected weighted graphs, compare every
//! algorithm in `pathsearch` against a simple Bellman–Ford oracle written
//! here (different algorithm, independently coded — a real oracle, not a
//! mirror of the implementation under test).

use proptest::prelude::*;
use roadnet::{GraphBuilder, GraphView, NodeId, Point, RoadNetwork};

/// Bellman–Ford distances from `s` — the test oracle.
fn bellman_ford(g: &RoadNetwork, s: NodeId) -> Vec<f64> {
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    dist[s.index()] = 0.0;
    for _ in 0..n {
        let mut changed = false;
        for u in g.nodes() {
            if dist[u.index()].is_infinite() {
                continue;
            }
            let du = dist[u.index()];
            g.for_each_arc(u, &mut |v, w| {
                if du + w < dist[v.index()] {
                    dist[v.index()] = du + w;
                    changed = true;
                }
            });
        }
        if !changed {
            break;
        }
    }
    dist
}

/// Random connected graph: a random spanning tree plus extra random edges,
/// with positive weights that dominate Euclidean distance (keeps A*
/// admissible).
fn arb_graph(max_nodes: usize) -> impl Strategy<Value = RoadNetwork> {
    (2..max_nodes)
        .prop_flat_map(|n| {
            let coords = proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), n);
            let parents = proptest::collection::vec(proptest::num::u32::ANY, n - 1);
            let extra = proptest::collection::vec((0..n as u32, 0..n as u32, 1.0f64..3.0), 0..n);
            (coords, parents, extra)
        })
        .prop_map(|(coords, parents, extra)| {
            let mut b = GraphBuilder::new();
            for (x, y) in &coords {
                b.add_node(Point::new(*x, *y)).expect("finite coords");
            }
            let n = coords.len();
            let euclid = |a: usize, c: usize| {
                Point::new(coords[a].0, coords[a].1).distance(Point::new(coords[c].0, coords[c].1))
            };
            // Spanning tree: node i+1 attaches to a random earlier node.
            for (i, p) in parents.iter().enumerate() {
                let child = i + 1;
                let parent = (*p as usize) % child;
                let w = euclid(parent, child).max(f64::EPSILON) * 1.1;
                b.add_edge(NodeId::from_index(parent), NodeId::from_index(child), w)
                    .expect("valid tree edge");
            }
            for (a, c, factor) in extra {
                let (a, c) = (a as usize % n, c as usize % n);
                if a != c {
                    let w = euclid(a, c).max(f64::EPSILON) * factor;
                    // Duplicate edges are fine: parallel roads exist.
                    b.add_edge(NodeId::from_index(a), NodeId::from_index(c), w)
                        .expect("valid extra edge");
                }
            }
            b.build().expect("non-empty graph")
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn dijkstra_matches_bellman_ford(g in arb_graph(40), s_raw in 0u32..40, t_raw in 0u32..40) {
        let n = g.num_nodes() as u32;
        let (s, t) = (NodeId(s_raw % n), NodeId(t_raw % n));
        let oracle = bellman_ford(&g, s);
        let got = pathsearch::shortest_distance(&g, s, t);
        match got {
            Some(d) => prop_assert!((d - oracle[t.index()]).abs() < 1e-9,
                "dijkstra {d} vs oracle {}", oracle[t.index()]),
            None => prop_assert!(oracle[t.index()].is_infinite()),
        }
    }

    #[test]
    fn astar_and_bidirectional_match_dijkstra(g in arb_graph(40), s_raw in 0u32..40, t_raw in 0u32..40) {
        let n = g.num_nodes() as u32;
        let (s, t) = (NodeId(s_raw % n), NodeId(t_raw % n));
        let d = pathsearch::shortest_distance(&g, s, t);
        let (a, _) = pathsearch::astar(&g, s, t);
        let (bi, _) = pathsearch::bidirectional(&g, s, t);
        match d {
            Some(d) => {
                let a = a.expect("A* must reach whatever Dijkstra reaches");
                let bi = bi.expect("bidirectional must reach whatever Dijkstra reaches");
                prop_assert!((a.distance() - d).abs() < 1e-9, "astar {} vs {d}", a.distance());
                prop_assert!((bi.distance() - d).abs() < 1e-9, "bidi {} vs {d}", bi.distance());
                prop_assert!(a.verify(&g, 1e-9));
                prop_assert!(bi.verify(&g, 1e-9));
            }
            None => {
                prop_assert!(a.is_none());
                prop_assert!(bi.is_none());
            }
        }
    }

    #[test]
    fn msmd_policies_agree_with_pairwise_dijkstra(
        g in arb_graph(30),
        src_raw in proptest::collection::vec(0u32..30, 1..4),
        dst_raw in proptest::collection::vec(0u32..30, 1..4),
    ) {
        let n = g.num_nodes() as u32;
        let mut sources: Vec<NodeId> = src_raw.iter().map(|&x| NodeId(x % n)).collect();
        let mut targets: Vec<NodeId> = dst_raw.iter().map(|&x| NodeId(x % n)).collect();
        sources.sort_unstable();
        sources.dedup();
        targets.sort_unstable();
        targets.dedup();

        for policy in pathsearch::SharingPolicy::ALL {
            let r = pathsearch::msmd(&g, &sources, &targets, policy);
            for (i, &s) in sources.iter().enumerate() {
                for (j, &t) in targets.iter().enumerate() {
                    let truth = pathsearch::shortest_distance(&g, s, t);
                    match (r.distance(i, j), truth) {
                        (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9,
                            "{}: ({i},{j}) {a} vs {b}", policy.name()),
                        (None, None) => {}
                        other => prop_assert!(false, "{}: reachability mismatch {other:?}", policy.name()),
                    }
                }
            }
        }
    }

    #[test]
    fn shared_frontier_matches_naive_costs_on_a_reused_arena(
        g in arb_graph(30),
        src_raw in proptest::collection::vec(0u32..30, 1..5),
        dst_raw in proptest::collection::vec(0u32..30, 1..5),
    ) {
        // One arena lives across *all* proptest cases (each a different
        // random graph), so this property doubles as the regression that
        // arena reuse never leaks labels between search generations.
        use std::cell::RefCell;
        thread_local! {
            static ARENA: RefCell<pathsearch::SearchArena> =
                RefCell::new(pathsearch::SearchArena::new());
        }
        let n = g.num_nodes() as u32;
        let mut sources: Vec<NodeId> = src_raw.iter().map(|&x| NodeId(x % n)).collect();
        let mut targets: Vec<NodeId> = dst_raw.iter().map(|&x| NodeId(x % n)).collect();
        sources.sort_unstable();
        sources.dedup();
        targets.sort_unstable();
        targets.dedup();

        let naive = pathsearch::msmd(&g, &sources, &targets, pathsearch::SharingPolicy::None);
        let frontier = ARENA.with(|a| {
            pathsearch::msmd_in(
                &mut a.borrow_mut(), &g, &sources, &targets,
                pathsearch::SharingPolicy::SharedFrontier,
            )
        });
        for (i, &s) in sources.iter().enumerate() {
            for (j, &t) in targets.iter().enumerate() {
                match (frontier.distance(i, j), naive.distance(i, j)) {
                    (Some(a), Some(b)) => {
                        prop_assert!((a - b).abs() < 1e-9, "({i},{j}): {a} vs {b}");
                        let p = frontier.paths[i][j].as_ref().expect("distance implies path");
                        prop_assert_eq!(p.source(), s);
                        prop_assert_eq!(p.destination(), t);
                        prop_assert!(p.verify(&g, 1e-9), "stitched path inconsistent at ({i},{j})");
                    }
                    (None, None) => {}
                    other => prop_assert!(false, "reachability mismatch at ({i},{j}): {other:?}"),
                }
            }
        }
    }

    #[test]
    fn shortest_path_metric_satisfies_triangle_inequality(
        g in arb_graph(25),
        a_raw in 0u32..25, b_raw in 0u32..25, c_raw in 0u32..25,
    ) {
        let n = g.num_nodes() as u32;
        let (a, b, c) = (NodeId(a_raw % n), NodeId(b_raw % n), NodeId(c_raw % n));
        // The generated graph is connected (spanning tree), so all finite.
        let ab = pathsearch::shortest_distance(&g, a, b).expect("connected");
        let bc = pathsearch::shortest_distance(&g, b, c).expect("connected");
        let ac = pathsearch::shortest_distance(&g, a, c).expect("connected");
        prop_assert!(ac <= ab + bc + 1e-9, "d(a,c)={ac} > d(a,b)+d(b,c)={}", ab + bc);
        // Undirected graph: symmetry.
        let ba = pathsearch::shortest_distance(&g, b, a).expect("connected");
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn returned_paths_are_internally_consistent(g in arb_graph(30), s_raw in 0u32..30, t_raw in 0u32..30) {
        let n = g.num_nodes() as u32;
        let (s, t) = (NodeId(s_raw % n), NodeId(t_raw % n));
        if let Some(p) = pathsearch::shortest_path(&g, s, t) {
            prop_assert_eq!(p.source(), s);
            prop_assert_eq!(p.destination(), t);
            prop_assert!(p.verify(&g, 1e-9));
            // No repeated nodes on a shortest path with positive weights.
            let mut seen = std::collections::HashSet::new();
            for node in p.nodes() {
                prop_assert!(seen.insert(*node), "cycle in shortest path");
            }
        }
    }
}
