//! Map pipeline: generate → export (TLN) → reload → serve from paged
//! storage with ALT acceleration.
//!
//! The operator-tooling path: a deployment generates (or imports) its road
//! network once, archives it in the TLN exchange format, and serves it
//! through the CCAM-style page store, with landmark tables precomputed for
//! fast single-pair queries.
//!
//! ```text
//! cargo run --example map_pipeline
//! ```

use pathsearch::{AltPreprocessing, Goal, Searcher, alt};
use roadnet::generators::{GeometricConfig, random_geometric};
use roadnet::io::{load_tln, save_tln};
use roadnet::{GraphView, NodeId, PagedGraph};

fn main() {
    // 1. Generate a city-scale network (stands in for a TIGER/Line import).
    let net =
        random_geometric(&GeometricConfig { num_nodes: 3_000, seed: 42, ..Default::default() })
            .expect("generator produces a valid network");
    println!(
        "generated: {} nodes, {} segments, avg degree {:.2}",
        net.num_nodes(),
        net.num_edges(),
        net.avg_degree()
    );

    // 2. Archive and reload through the TLN text format (bit-exact).
    let path = std::env::temp_dir().join("opaque_map_pipeline.tln");
    save_tln(&net, &path).expect("write TLN");
    let reloaded = load_tln(&path).expect("read TLN");
    assert_eq!(net.edges(), reloaded.edges(), "round trip must be exact");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("archived to {} ({bytes} bytes) and reloaded bit-exact", path.display());

    // 3. Serve through the CCAM page store with a small buffer and measure
    //    the I/O a long query costs.
    let paged = PagedGraph::ccam(&reloaded, 16);
    println!(
        "paged store: {} pages of {} slots, buffer 16 pages, colocation {:.2}",
        paged.layout().num_pages(),
        paged.layout().slots_per_page(),
        paged.layout().colocation_ratio(&reloaded),
    );
    let (s, t) = (NodeId(0), NodeId(reloaded.num_nodes() as u32 - 1));
    let mut searcher = Searcher::new();
    let stats = searcher.run(&paged, s, &Goal::Single(t));
    let io = paged.io_stats();
    println!(
        "dijkstra {s} → {t}: settled {} nodes, {} page faults ({:.0}% buffer hits)",
        stats.settled,
        io.faults,
        io.hit_ratio() * 100.0
    );

    // 4. Precompute ALT landmarks and run the same query goal-directed.
    let pre = AltPreprocessing::build(&reloaded, 8);
    let (path_alt, alt_stats) = alt(&reloaded, &pre, s, t);
    let path_alt = path_alt.expect("connected");
    let d_direct = searcher.distance(t).expect("connected");
    assert!((path_alt.distance() - d_direct).abs() < 1e-9);
    println!(
        "alt with {} landmarks ({} table entries): settled {} nodes ({}x fewer), same distance {:.2}",
        pre.landmarks().len(),
        pre.table_entries(),
        alt_stats.settled,
        stats.settled / alt_stats.settled.max(1),
        path_alt.distance()
    );

    // GraphView is one interface over both representations.
    let deg_mem = reloaded.degree(NodeId(7));
    let mut deg_paged = 0;
    paged.for_each_arc(NodeId(7), &mut |_, _| deg_paged += 1);
    assert_eq!(deg_mem, deg_paged);
    println!("in-memory and paged views agree — same GraphView, different cost model");

    std::fs::remove_file(&path).ok();
}
