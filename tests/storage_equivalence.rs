//! Paged storage must be a *transparent* cost simulation: every search
//! returns identical results through the buffer as against the in-memory
//! CSR, while I/O counters behave monotonically.

use pathsearch::{Goal, Searcher, SharingPolicy, msmd};
use proptest::prelude::*;
use roadnet::generators::{GridConfig, NetworkClass, grid_network};
use roadnet::{NodeId, PageLayout, PagePlacement, PagedGraph};

#[test]
fn searches_identical_through_every_placement() {
    for class in NetworkClass::ALL {
        let g = class.generate(500, 21).expect("valid network");
        let n = g.num_nodes() as u32;
        let pairs = [(0u32, n - 1), (n / 3, 2 * n / 3), (1, n / 2)];
        for placement in [
            PagePlacement::Connectivity,
            PagePlacement::BfsOrder,
            PagePlacement::NodeOrder,
            PagePlacement::Random { seed: 9 },
        ] {
            let layout = PageLayout::build(&g, placement, 64);
            let paged = PagedGraph::new(&g, layout, 4);
            let mut searcher = Searcher::new();
            for &(s, t) in &pairs {
                let direct =
                    pathsearch::shortest_path(&g, NodeId(s), NodeId(t)).expect("connected");
                searcher.run(&paged, NodeId(s), &Goal::Single(NodeId(t)));
                let through = searcher.path_to(NodeId(t)).expect("connected");
                assert_eq!(
                    direct.nodes(),
                    through.nodes(),
                    "{} / {}: different path",
                    class.name(),
                    placement.name()
                );
                assert!((direct.distance() - through.distance()).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn msmd_identical_over_paged_graph() {
    let g = grid_network(&GridConfig { width: 18, height: 18, seed: 2, ..Default::default() })
        .expect("valid network");
    let paged = PagedGraph::ccam(&g, 6);
    let sources = [NodeId(0), NodeId(17)];
    let targets = [NodeId(300), NodeId(200), NodeId(111)];
    let mem = msmd(&g, &sources, &targets, SharingPolicy::PerSource);
    let pag = msmd(&paged, &sources, &targets, SharingPolicy::PerSource);
    for i in 0..sources.len() {
        for j in 0..targets.len() {
            assert_eq!(mem.distance(i, j), pag.distance(i, j), "distance mismatch at ({i},{j})");
        }
    }
    // Settled-node counts are a property of the algorithm, not the storage.
    assert_eq!(mem.stats.settled, pag.stats.settled);
    assert!(paged.io_stats().faults > 0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn buffer_size_monotonicity(buffer_small in 1usize..8, extra in 1usize..64, seed in 0u64..1000) {
        // More buffer never causes more faults (LRU is a stack algorithm —
        // inclusion property).
        let g = grid_network(&GridConfig { width: 14, height: 14, seed, ..Default::default() })
            .expect("valid network");
        let layout = PageLayout::build(&g, PagePlacement::Connectivity, 64);
        let run = |pages: usize| {
            let paged = PagedGraph::new(&g, layout.clone(), pages);
            let mut searcher = Searcher::new();
            searcher.run(&paged, NodeId(0), &Goal::AllNodes);
            searcher.run(&paged, NodeId((seed % 196) as u32), &Goal::AllNodes);
            paged.io_stats().faults
        };
        let small = run(buffer_small);
        let large = run(buffer_small + extra);
        prop_assert!(large <= small, "faults grew with buffer: {small} -> {large}");
    }

    #[test]
    fn faults_bounded_by_accesses_and_pages(seed in 0u64..1000, buffer in 1usize..32) {
        let g = grid_network(&GridConfig { width: 12, height: 12, seed, ..Default::default() })
            .expect("valid network");
        let paged = PagedGraph::ccam(&g, buffer);
        let mut searcher = Searcher::new();
        searcher.run(&paged, NodeId(0), &Goal::AllNodes);
        let io = paged.io_stats();
        prop_assert!(io.faults <= io.accesses);
        prop_assert!(io.faults >= (paged.layout().num_pages() as u64).min(io.accesses),
            "a full-tree search must touch every page at least once");
        prop_assert!(io.hit_ratio() >= 0.0 && io.hit_ratio() <= 1.0);
    }
}
