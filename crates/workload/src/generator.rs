//! Client-request batch generation.
//!
//! Combines a spatial [`QueryDistribution`] with a distribution over
//! protection settings to produce the `⟨u_i, (s_i,t_i), (f_Si, f_Ti)⟩`
//! batches every experiment consumes.

use crate::distributions::{QueryDistribution, QuerySampler};
use opaque::{ClientId, ClientRequest, PathQuery, ProtectionSettings};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::{RoadNetwork, SpatialIndex};

/// How per-client protection settings are drawn.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ProtectionDistribution {
    /// Every client requests the same `(f_s, f_t)`.
    Fixed {
        /// Source obfuscation-set size.
        f_s: u32,
        /// Target obfuscation-set size.
        f_t: u32,
    },
    /// Both sizes drawn uniformly from `lo..=hi` per client.
    UniformRange {
        /// Smallest set size drawn.
        lo: u32,
        /// Largest set size drawn.
        hi: u32,
    },
}

impl ProtectionDistribution {
    fn sample(&self, rng: &mut StdRng) -> ProtectionSettings {
        match *self {
            ProtectionDistribution::Fixed { f_s, f_t } => {
                ProtectionSettings::new(f_s, f_t).expect("validated at construction")
            }
            ProtectionDistribution::UniformRange { lo, hi } => {
                assert!(lo >= 1 && hi >= lo, "range must satisfy 1 <= lo <= hi");
                ProtectionSettings::new(rng.gen_range(lo..=hi), rng.gen_range(lo..=hi))
                    .expect("range is >= 1")
            }
        }
    }
}

/// Full workload description.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadConfig {
    /// Number of client requests in the batch.
    pub num_requests: usize,
    /// Spatial distribution of (source, destination) pairs.
    pub queries: QueryDistribution,
    /// Distribution of protection settings.
    pub protection: ProtectionDistribution,
    /// RNG seed; batches are reproducible per seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            num_requests: 32,
            queries: QueryDistribution::Uniform,
            protection: ProtectionDistribution::Fixed { f_s: 3, f_t: 3 },
            seed: 0,
        }
    }
}

/// Generate a batch of client requests over `map`. Client ids are dense
/// from 0 in generation order.
pub fn generate_requests(
    map: &RoadNetwork,
    index: &SpatialIndex,
    cfg: &WorkloadConfig,
) -> Vec<ClientRequest> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x776f_726b); // "work"
    let sampler = QuerySampler::new(map, index, cfg.queries, &mut rng);
    (0..cfg.num_requests)
        .map(|i| {
            let (s, t) = sampler.sample(&mut rng);
            ClientRequest::new(
                ClientId(i as u32),
                PathQuery::new(s, t),
                cfg.protection.sample(&mut rng),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::generators::{GridConfig, grid_network};

    fn setup() -> (RoadNetwork, SpatialIndex) {
        let g = grid_network(&GridConfig { width: 20, height: 20, seed: 6, ..Default::default() })
            .unwrap();
        let idx = SpatialIndex::build(&g);
        (g, idx)
    }

    #[test]
    fn generates_requested_count_with_dense_ids() {
        let (g, idx) = setup();
        let reqs = generate_requests(&g, &idx, &WorkloadConfig::default());
        assert_eq!(reqs.len(), 32);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.client, ClientId(i as u32));
            assert_ne!(r.query.source, r.query.destination);
        }
    }

    #[test]
    fn fixed_protection_is_constant() {
        let (g, idx) = setup();
        let cfg = WorkloadConfig {
            protection: ProtectionDistribution::Fixed { f_s: 4, f_t: 2 },
            ..Default::default()
        };
        for r in generate_requests(&g, &idx, &cfg) {
            assert_eq!(r.protection, ProtectionSettings::new(4, 2).unwrap());
        }
    }

    #[test]
    fn ranged_protection_stays_in_bounds_and_varies() {
        let (g, idx) = setup();
        let cfg = WorkloadConfig {
            num_requests: 100,
            protection: ProtectionDistribution::UniformRange { lo: 2, hi: 6 },
            ..Default::default()
        };
        let reqs = generate_requests(&g, &idx, &cfg);
        let mut seen = std::collections::HashSet::new();
        for r in &reqs {
            assert!((2..=6).contains(&r.protection.f_s));
            assert!((2..=6).contains(&r.protection.f_t));
            seen.insert((r.protection.f_s, r.protection.f_t));
        }
        assert!(seen.len() > 3, "range should produce variety, got {seen:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (g, idx) = setup();
        let cfg = WorkloadConfig { seed: 42, ..Default::default() };
        assert_eq!(generate_requests(&g, &idx, &cfg), generate_requests(&g, &idx, &cfg));
        let other = WorkloadConfig { seed: 43, ..Default::default() };
        assert_ne!(generate_requests(&g, &idx, &cfg), generate_requests(&g, &idx, &other));
    }

    #[test]
    fn batch_feeds_the_opaque_pipeline() {
        use opaque::{FakeSelection, ObfuscationMode, ServiceBuilder};
        use pathsearch::SharingPolicy;
        let (g, idx) = setup();
        let reqs =
            generate_requests(&g, &idx, &WorkloadConfig { num_requests: 6, ..Default::default() });
        let mut svc = ServiceBuilder::new()
            .map(g)
            .fake_selection(FakeSelection::default_ring())
            .seed(3)
            .sharing_policy(SharingPolicy::PerSource)
            .obfuscation_mode(ObfuscationMode::SharedGlobal)
            .build()
            .expect("valid configuration");
        let results = svc.process_batch(&reqs).unwrap().results;
        assert_eq!(results.len(), 6);
    }
}
