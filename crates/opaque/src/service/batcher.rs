//! Request admission and batching.
//!
//! The paper's obfuscator operates on batches ("partitions the received
//! queries", §IV), but a live deployment receives a *stream*: requests must
//! be collected for some window before shared obfuscation can help. The
//! [`Batcher`] is that admission path. Clients [`Batcher::submit`] requests
//! and receive a [`Ticket`]; the pending batch drains when either trigger
//! fires:
//!
//! * **size** — the batch reached [`BatchPolicy::max_batch`] requests;
//! * **deadline** — the oldest pending request has waited
//!   [`BatchPolicy::max_delay`] seconds.
//!
//! Time is explicit (seconds as `f64`, matching `workload`'s arrival
//! clocks): callers pass `now` into [`Batcher::submit`] and
//! [`Batcher::tick`], which keeps the batcher deterministic and testable —
//! and lets experiments replay recorded streams exactly.

use crate::error::{OpaqueError, Result};
use crate::query::{ClientId, ClientRequest};
use std::collections::HashSet;

/// When a pending batch is flushed.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BatchPolicy {
    /// Flush as soon as this many requests are pending.
    pub max_batch: usize,
    /// Flush once the oldest pending request has waited this many seconds.
    pub max_delay: f64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy { max_batch: 32, max_delay: 5.0 }
    }
}

impl BatchPolicy {
    /// Check the policy is satisfiable.
    pub fn validate(&self) -> Result<()> {
        if self.max_batch == 0 {
            return Err(OpaqueError::InvalidConfig {
                reason: "batch policy: max_batch must be >= 1".to_string(),
            });
        }
        if !self.max_delay.is_finite() || self.max_delay < 0.0 {
            return Err(OpaqueError::InvalidConfig {
                reason: format!(
                    "batch policy: max_delay must be finite and >= 0, got {}",
                    self.max_delay
                ),
            });
        }
        Ok(())
    }
}

/// Receipt for a submitted request; stable for the life of the batcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Ticket(pub u64);

/// One drained batch: the requests in admission order, their tickets, and
/// their arrival clocks (for latency accounting).
#[derive(Clone, Debug)]
pub struct DrainedBatch {
    /// Requests in the order they were admitted.
    pub requests: Vec<ClientRequest>,
    /// `tickets[i]` was issued for `requests[i]`.
    pub tickets: Vec<Ticket>,
    /// `arrivals[i]` is the submission clock of `requests[i]`.
    pub arrivals: Vec<f64>,
}

impl DrainedBatch {
    /// Mean seconds the batch's requests waited, measured at `flush_time`.
    pub fn mean_wait(&self, flush_time: f64) -> f64 {
        if self.arrivals.is_empty() {
            return 0.0;
        }
        self.arrivals.iter().map(|a| flush_time - a).sum::<f64>() / self.arrivals.len() as f64
    }
}

/// The request queue in front of the obfuscator.
pub struct Batcher {
    policy: BatchPolicy,
    pending: Vec<(Ticket, ClientRequest, f64)>,
    pending_clients: HashSet<ClientId>,
    /// Running `min` of pending arrivals (`INFINITY` when empty), so the
    /// deadline check is O(1) per tick even for non-monotonic submit
    /// clocks.
    oldest_arrival: f64,
    next_ticket: u64,
}

impl Batcher {
    /// A batcher with the given flush policy.
    ///
    /// # Errors
    /// [`OpaqueError::InvalidConfig`] when the policy is unsatisfiable.
    pub fn new(policy: BatchPolicy) -> Result<Self> {
        policy.validate()?;
        // max_batch may be huge (deadline-only batching); don't pre-reserve.
        Ok(Batcher {
            policy,
            pending: Vec::with_capacity(policy.max_batch.min(1024)),
            pending_clients: HashSet::new(),
            oldest_arrival: f64::INFINITY,
            next_ticket: 0,
        })
    }

    /// The active policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Number of requests waiting for the next flush.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Admit one request at clock `now`; returns its [`Ticket`].
    ///
    /// # Errors
    /// * [`OpaqueError::DuplicateClient`] — the client already has a
    ///   pending request; two requests from one client in the same batch
    ///   would make result routing ambiguous (and weaken the shared
    ///   query's anonymity accounting).
    /// * [`OpaqueError::InvalidProtection`] — a zero protection size.
    pub fn submit(&mut self, request: ClientRequest, now: f64) -> Result<Ticket> {
        if self.pending_clients.contains(&request.client) {
            return Err(OpaqueError::DuplicateClient { client: request.client });
        }
        if request.protection.f_s == 0 || request.protection.f_t == 0 {
            return Err(OpaqueError::InvalidProtection {
                f_s: request.protection.f_s,
                f_t: request.protection.f_t,
            });
        }
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        self.pending_clients.insert(request.client);
        self.oldest_arrival = self.oldest_arrival.min(now);
        self.pending.push((ticket, request, now));
        Ok(ticket)
    }

    /// Replace the flush policy in place (tickets and pending requests are
    /// untouched; the new policy applies from the next trigger check).
    ///
    /// # Errors
    /// [`OpaqueError::InvalidConfig`] when the policy is unsatisfiable.
    pub fn set_policy(&mut self, policy: BatchPolicy) -> Result<()> {
        policy.validate()?;
        self.policy = policy;
        Ok(())
    }

    /// Clock at which the *deadline* trigger fires for the current pending
    /// set (oldest arrival + `max_delay`); `None` when nothing is pending.
    /// Lets drivers advance a simulated clock straight to the next
    /// deadline instant instead of shadow-tracking arrivals.
    ///
    /// This reports the deadline trigger only: the *size* trigger needs no
    /// clock and fires on [`Batcher::tick`] at any `now`, so drivers
    /// should tick right after a submission fills the batch rather than
    /// jumping ahead to this deadline.
    pub fn next_deadline(&self) -> Option<f64> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.oldest_arrival + self.policy.max_delay)
        }
    }

    /// Whether a flush trigger has fired at clock `now`.
    pub fn ready(&self, now: f64) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        if self.pending.len() >= self.policy.max_batch {
            return true;
        }
        // Tracked min over arrivals, not pending[0]: callers replaying
        // merged or unsorted recorded streams may submit with
        // non-monotonic clocks. Compared as `now >= oldest + delay` — the
        // exact expression `next_deadline` reports — so
        // `tick(next_deadline())` fires by construction, with no rounding
        // gap between the reported and effective trigger instant.
        now >= self.oldest_arrival + self.policy.max_delay
    }

    /// Drain a batch if a trigger has fired at clock `now`. At most
    /// [`BatchPolicy::max_batch`] requests are taken (oldest first), so a
    /// backlog that grew past the cap between ticks drains in policy-sized
    /// chunks — `ready` stays true until the backlog is gone.
    pub fn tick(&mut self, now: f64) -> Option<DrainedBatch> {
        if self.ready(now) { self.drain(self.policy.max_batch) } else { None }
    }

    /// Drain everything pending unconditionally, ignoring the size cap
    /// (e.g. at shutdown); `None` when empty.
    pub fn flush(&mut self) -> Option<DrainedBatch> {
        self.drain(usize::MAX)
    }

    fn drain(&mut self, limit: usize) -> Option<DrainedBatch> {
        if self.pending.is_empty() {
            return None;
        }
        let take = self.pending.len().min(limit);
        let mut batch = DrainedBatch {
            requests: Vec::with_capacity(take),
            tickets: Vec::with_capacity(take),
            arrivals: Vec::with_capacity(take),
        };
        for (ticket, request, arrival) in self.pending.drain(..take) {
            self.pending_clients.remove(&request.client);
            batch.tickets.push(ticket);
            batch.requests.push(request);
            batch.arrivals.push(arrival);
        }
        // A partial (chunked) drain leaves stragglers: recompute their min.
        self.oldest_arrival = self.pending.iter().map(|(_, _, a)| *a).fold(f64::INFINITY, f64::min);
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{PathQuery, ProtectionSettings};
    use roadnet::NodeId;

    fn request(i: u32) -> ClientRequest {
        ClientRequest::new(
            ClientId(i),
            PathQuery::new(NodeId(i), NodeId(i + 100)),
            ProtectionSettings::new(2, 2).unwrap(),
        )
    }

    #[test]
    fn size_trigger_flushes_at_max_batch() {
        let mut b = Batcher::new(BatchPolicy { max_batch: 3, max_delay: 100.0 }).unwrap();
        assert!(b.submit(request(0), 0.0).is_ok());
        assert!(b.submit(request(1), 0.1).is_ok());
        assert!(b.tick(0.2).is_none(), "2 of 3: not ready");
        b.submit(request(2), 0.2).unwrap();
        let batch = b.tick(0.2).expect("size trigger");
        assert_eq!(batch.requests.len(), 3);
        assert_eq!(batch.tickets, vec![Ticket(0), Ticket(1), Ticket(2)]);
        assert!(b.is_empty());
    }

    #[test]
    fn deadline_trigger_flushes_after_max_delay() {
        let mut b = Batcher::new(BatchPolicy { max_batch: 100, max_delay: 5.0 }).unwrap();
        b.submit(request(0), 10.0).unwrap();
        b.submit(request(1), 12.0).unwrap();
        assert!(b.tick(14.9).is_none(), "oldest waited 4.9s < 5s");
        let batch = b.tick(15.0).expect("deadline trigger");
        assert_eq!(batch.requests.len(), 2);
        assert!((batch.mean_wait(15.0) - 4.0).abs() < 1e-12, "waits 5s and 3s");
    }

    #[test]
    fn duplicate_client_rejected_until_flush() {
        let mut b = Batcher::new(BatchPolicy::default()).unwrap();
        b.submit(request(7), 0.0).unwrap();
        assert!(matches!(
            b.submit(request(7), 0.1),
            Err(OpaqueError::DuplicateClient { client: ClientId(7) })
        ));
        b.flush().unwrap();
        // After the batch drains the client may submit again.
        assert!(b.submit(request(7), 1.0).is_ok());
    }

    #[test]
    fn oversized_backlog_drains_in_policy_sized_chunks() {
        // 5 submissions land between ticks; max_batch = 2 must cap every
        // drained batch, not just trigger the flush.
        let mut b = Batcher::new(BatchPolicy { max_batch: 2, max_delay: 100.0 }).unwrap();
        for i in 0..5 {
            b.submit(request(i), 0.0).unwrap();
        }
        let first = b.tick(0.0).expect("size trigger");
        assert_eq!(first.requests.len(), 2);
        assert_eq!(first.tickets, vec![Ticket(0), Ticket(1)]);
        let second = b.tick(0.0).expect("still over the cap");
        assert_eq!(second.requests.len(), 2);
        // One left: below the size cap, so only deadline or flush drains it.
        assert!(b.tick(0.0).is_none());
        assert_eq!(b.len(), 1);
        // The drained clients may resubmit; the straggler may not.
        assert!(b.submit(request(0), 1.0).is_ok());
        assert!(matches!(b.submit(request(4), 1.0), Err(OpaqueError::DuplicateClient { .. })));
        let rest = b.flush().expect("flush ignores the cap");
        assert_eq!(rest.requests.len(), 2);
    }

    #[test]
    fn deadline_uses_true_oldest_arrival_under_non_monotonic_clocks() {
        // Replayed merged streams may submit out of order: the deadline
        // must key on the minimum arrival, not the first submission.
        let mut b = Batcher::new(BatchPolicy { max_batch: 100, max_delay: 5.0 }).unwrap();
        b.submit(request(0), 10.0).unwrap();
        b.submit(request(1), 3.0).unwrap(); // older than the first submission
        assert!(b.ready(8.0), "oldest arrival 3.0 has waited 5s by t=8");
        let batch = b.tick(8.0).expect("deadline trigger");
        assert_eq!(batch.requests.len(), 2);
    }

    #[test]
    fn tickets_are_unique_across_batches() {
        let mut b = Batcher::new(BatchPolicy { max_batch: 1, max_delay: 1.0 }).unwrap();
        let t0 = b.submit(request(0), 0.0).unwrap();
        b.tick(0.0).unwrap();
        let t1 = b.submit(request(0), 1.0).unwrap();
        assert_ne!(t0, t1);
    }

    #[test]
    fn invalid_policies_and_requests_are_rejected() {
        assert!(matches!(
            Batcher::new(BatchPolicy { max_batch: 0, max_delay: 1.0 }),
            Err(OpaqueError::InvalidConfig { .. })
        ));
        assert!(matches!(
            Batcher::new(BatchPolicy { max_batch: 1, max_delay: f64::NAN }),
            Err(OpaqueError::InvalidConfig { .. })
        ));
        let mut b = Batcher::new(BatchPolicy::default()).unwrap();
        let mut bad = request(0);
        bad.protection.f_s = 0;
        assert!(matches!(b.submit(bad, 0.0), Err(OpaqueError::InvalidProtection { .. })));
    }

    #[test]
    fn flush_on_empty_is_none() {
        let mut b = Batcher::new(BatchPolicy::default()).unwrap();
        assert!(b.flush().is_none());
        assert!(!b.ready(1e9));
    }

    #[test]
    fn tick_fires_exactly_at_the_reported_deadline() {
        // The deadline edge: `ready` compares `now >= oldest + delay`, the
        // exact expression `next_deadline` reports — so ticking at that
        // instant (not an epsilon later) must fire, and one representable
        // float below it must not.
        let mut b = Batcher::new(BatchPolicy { max_batch: 100, max_delay: 5.0 }).unwrap();
        b.submit(request(0), 1.5).unwrap();
        let deadline = b.next_deadline().expect("one pending request");
        assert_eq!(deadline, 6.5);
        let just_before = f64::from_bits(deadline.to_bits() - 1);
        assert!(b.tick(just_before).is_none(), "one ulp early must not fire");
        let batch = b.tick(deadline).expect("exact deadline tick fires");
        assert_eq!(batch.requests.len(), 1);
        assert_eq!(b.next_deadline(), None, "drained queue reports no deadline");
    }

    #[test]
    fn tick_on_empty_never_fires() {
        // The empty-flush branch: no pending requests means no trigger at
        // any clock, before or after activity.
        let mut b = Batcher::new(BatchPolicy { max_batch: 1, max_delay: 0.0 }).unwrap();
        assert!(b.tick(0.0).is_none());
        assert!(b.tick(f64::MAX).is_none());
        b.submit(request(0), 0.0).unwrap();
        b.tick(0.0).expect("size trigger");
        // Drained back to empty: still no spurious trigger (max_delay = 0
        // would fire instantly if the stale oldest-arrival survived).
        assert!(b.tick(f64::MAX).is_none());
        assert!(b.flush().is_none());
    }

    #[test]
    fn submit_after_flush_restarts_the_deadline_window() {
        let mut b = Batcher::new(BatchPolicy { max_batch: 100, max_delay: 5.0 }).unwrap();
        b.submit(request(0), 0.0).unwrap();
        b.flush().expect("forced drain");
        // The drain must reset the oldest-arrival floor: a request
        // submitted at t=100 keys its deadline on its own arrival, not on
        // the long-gone t=0 one (which would make it instantly overdue).
        let t = b.submit(request(1), 100.0).unwrap();
        assert_eq!(b.next_deadline(), Some(105.0));
        assert!(b.tick(104.9).is_none(), "not due before its own window");
        let batch = b.tick(105.0).expect("deadline keyed on the new arrival");
        assert_eq!(batch.tickets, vec![t]);
        assert!((batch.mean_wait(105.0) - 5.0).abs() < 1e-12);
    }
}
