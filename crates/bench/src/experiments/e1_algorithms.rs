//! E1 — plain directions search (Figure 1, §I).
//!
//! Baseline characterization of the server's single-pair evaluators on all
//! three network classes: Dijkstra (the paper's default), A* (its
//! goal-directed alternative), and bidirectional Dijkstra. Verifies all
//! three agree on distances and records how much area each settles — the
//! yardstick every obfuscation-cost experiment is measured against.

use crate::setup::{Scale, network};
use crate::table::{ExperimentTable, f3};
use pathsearch::{AltPreprocessing, Goal, Searcher, alt, astar, bidirectional};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::NodeId;
use roadnet::generators::NetworkClass;

/// Run E1.
pub fn run(scale: &Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E1",
        "single-pair search algorithms",
        "Figure 1 / §I server baseline",
        &["network", "algorithm", "mean settled", "mean relaxed", "mean dist", "agree"],
    );
    let mut rng = StdRng::seed_from_u64(0xE1);

    for class in NetworkClass::ALL {
        let g = network(class, scale);
        let n = g.num_nodes() as u32;
        let pairs: Vec<(NodeId, NodeId)> = (0..scale.queries)
            .map(|_| {
                loop {
                    let s = NodeId(rng.gen_range(0..n));
                    let d = NodeId(rng.gen_range(0..n));
                    if s != d {
                        break (s, d);
                    }
                }
            })
            .collect();

        let pre = AltPreprocessing::build(&g, 8);
        let mut dij = (0u64, 0u64, 0.0f64);
        let mut ast = (0u64, 0u64, 0.0f64);
        let mut bid = (0u64, 0u64, 0.0f64);
        let mut alt_acc = (0u64, 0u64, 0.0f64);
        let mut agree = true;
        let mut searcher = Searcher::new();
        for &(s, d) in &pairs {
            let st = searcher.run(&g, s, &Goal::Single(d));
            let dd = searcher.distance(d).expect("connected network");
            dij.0 += st.settled;
            dij.1 += st.relaxed;
            dij.2 += dd;

            let (ap, ast_st) = astar(&g, s, d);
            let ad = ap.expect("connected").distance();
            ast.0 += ast_st.settled;
            ast.1 += ast_st.relaxed;
            ast.2 += ad;

            let (bp, bid_st) = bidirectional(&g, s, d);
            let bd = bp.expect("connected").distance();
            bid.0 += bid_st.settled;
            bid.1 += bid_st.relaxed;
            bid.2 += bd;

            let (lp, alt_st) = alt(&g, &pre, s, d);
            let ld = lp.expect("connected").distance();
            alt_acc.0 += alt_st.settled;
            alt_acc.1 += alt_st.relaxed;
            alt_acc.2 += ld;

            agree &= (dd - ad).abs() < 1e-6 && (dd - bd).abs() < 1e-6 && (dd - ld).abs() < 1e-6;
        }

        let q = pairs.len() as f64;
        for (name, (settled, relaxed, dist)) in
            [("dijkstra", dij), ("astar", ast), ("bidirectional", bid), ("alt-8", alt_acc)]
        {
            t.row(vec![
                class.name().into(),
                name.into(),
                f3(settled as f64 / q),
                f3(relaxed as f64 / q),
                f3(dist / q),
                if agree { "yes" } else { "NO" }.into(),
            ]);
        }
    }
    t.note("all four algorithms must agree on every distance (column `agree`)");
    t.note(
        "A*, bidirectional, and ALT settle fewer nodes; Dijkstra is the cost baseline for E4/E5",
    );
    t.note("alt-8 = ALT with 8 farthest-point landmarks (extension; network-distance heuristic)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_produces_twelve_rows_and_agreement() {
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), 12);
        for row in &t.rows {
            assert_eq!(row[5], "yes", "algorithms disagreed: {row:?}");
        }
    }

    #[test]
    fn e1_goal_directed_beats_blind_search() {
        let t = run(&Scale::quick());
        // Per class: astar and alt settled <= dijkstra settled.
        for chunk in t.rows.chunks(4) {
            let dij: f64 = chunk[0][2].parse().unwrap();
            let ast: f64 = chunk[1][2].parse().unwrap();
            let alt: f64 = chunk[3][2].parse().unwrap();
            assert!(ast <= dij * 1.05, "A* {ast} vs Dijkstra {dij} on {}", chunk[0][0]);
            assert!(alt <= dij * 1.05, "ALT {alt} vs Dijkstra {dij} on {}", chunk[0][0]);
        }
    }
}
