//! # bench — experiment harness for the OPAQUE reproduction
//!
//! Regenerates every paper artifact as a table (see DESIGN.md §3 for the
//! experiment index). Run the whole suite with:
//!
//! ```text
//! cargo run -p bench --release --bin experiments
//! cargo run -p bench --release --bin experiments -- e4 e5   # a subset
//! cargo run -p bench --release --bin experiments -- --quick # CI scale
//! ```
//!
//! Criterion micro-benchmarks (timings rather than operation counts) live
//! in `crates/bench/benches/`, one per experiment family.

pub mod experiments;
pub mod json;
pub mod setup;
pub mod table;

pub use json::{PerfPoint, PerfTrajectory};
pub use setup::Scale;
pub use table::{ExperimentTable, f3};
