//! R2 — unsafe audit: every `unsafe` block/fn/impl/trait carries an
//! immediately-preceding `// SAFETY:` comment, and every site lands in a
//! machine-readable census.
//!
//! `unsafe` is a claim that the author discharged an obligation the
//! compiler cannot check. The claim is only auditable if it is written
//! down *at the site*: a `// SAFETY:` comment on the line(s) directly
//! above (attributes in between are fine), stating the contract being
//! relied on. The rule flags missing or empty SAFETY comments, and emits
//! a census entry `{file, line, kind, justification}` for every site so
//! CI can publish the workspace's complete unsafe surface as an
//! artifact.
//!
//! There is deliberately no allow-marker escape for this rule: the fix
//! for a missing SAFETY comment is the comment itself.

use crate::rules::RawViolation;
use crate::source::SourceFile;

/// One `unsafe` site, for the census artifact.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct UnsafeSite {
    /// Repo-relative file.
    pub file: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// `block`, `fn`, `impl`, or `trait`.
    pub kind: String,
    /// The SAFETY comment's text (empty when missing — which is also a
    /// violation).
    pub justification: String,
}

/// Run R2 over one file. Returns violations plus the census entries.
pub fn check(f: &SourceFile) -> (Vec<RawViolation>, Vec<UnsafeSite>) {
    let mut out = Vec::new();
    let mut census = Vec::new();
    let n = f.code_len();
    for ci in 0..n {
        let t = f.ct(ci);
        if !t.is_ident("unsafe") {
            continue;
        }
        let kind = match f.code.get(ci + 1).map(|&i| &f.toks[i]) {
            Some(next) if next.is_punct('{') => "block",
            Some(next) if next.is_ident("fn") || next.is_ident("extern") => "fn",
            Some(next) if next.is_ident("impl") => "impl",
            Some(next) if next.is_ident("trait") => "trait",
            _ => "block",
        };
        let justification = safety_comment_above(f, t.line);
        match &justification {
            None => out.push(RawViolation::new(
                "safety-comment",
                t.line,
                format!(
                    "`unsafe` {kind} without a `// SAFETY:` comment immediately above: write \
                     down the contract this site discharges"
                ),
            )),
            Some(j) if j.is_empty() => out.push(RawViolation::new(
                "safety-comment",
                t.line,
                "`// SAFETY:` comment is empty: state the actual obligation and why it holds",
            )),
            Some(_) => {}
        }
        census.push(UnsafeSite {
            file: f.rel.clone(),
            line: t.line,
            kind: kind.to_string(),
            justification: justification.unwrap_or_default(),
        });
    }
    (out, census)
}

/// The SAFETY comment attached to an `unsafe` at `line`: scan the
/// contiguous comment block directly above (skipping attribute-only
/// lines), accept a trailing comment on the same line too.
fn safety_comment_above(f: &SourceFile, line: u32) -> Option<String> {
    // Gather comment text by line, walking upward while lines hold
    // comments or attributes.
    let mut block: Vec<&str> = Vec::new();
    let mut l = line; // include trailing comments on the unsafe line itself
    loop {
        let comments: Vec<&str> = f
            .toks
            .iter()
            .filter(|t| t.is_comment() && covers_line(t, l))
            .map(|t| t.text.as_str())
            .collect();
        let has_comment = !comments.is_empty();
        let attr_only = !has_comment && line_is_attribute_only(f, l) && l != line;
        for c in comments.into_iter().rev() {
            block.push(c);
        }
        if l == 1 || (!has_comment && !attr_only && l != line) {
            break;
        }
        l -= 1;
    }
    block.reverse();
    let joined = block.join("\n");
    let at = joined.find("SAFETY:")?;
    let text = joined[at + "SAFETY:".len()..]
        .lines()
        .map(|s| s.trim_matches(|c: char| c.is_whitespace() || matches!(c, '/' | '*' | '!')))
        .collect::<Vec<_>>()
        .join(" ")
        .trim()
        .to_string();
    Some(text)
}

/// Does a (possibly multi-line) comment token cover source line `l`?
fn covers_line(t: &crate::lexer::Tok, l: u32) -> bool {
    let end = t.line + t.text.matches('\n').count() as u32;
    t.line <= l && l <= end
}

/// Is line `l` made of attribute tokens only (`#[…]`)?
fn line_is_attribute_only(f: &SourceFile, l: u32) -> bool {
    let mut any = false;
    for &i in &f.code {
        let t = &f.toks[i];
        if t.line != l {
            continue;
        }
        any = true;
        let attr_ish = t.is_punct('#')
            || t.is_punct('[')
            || t.is_punct(']')
            || t.is_punct('(')
            || t.is_punct(')')
            || t.is_punct(',')
            || t.is_punct('=')
            || matches!(t.kind, crate::lexer::TokKind::Ident | crate::lexer::TokKind::Str);
        if !attr_ish {
            return false;
        }
    }
    any
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> (Vec<RawViolation>, Vec<UnsafeSite>) {
        check(&SourceFile::parse("x.rs", src))
    }

    #[test]
    fn documented_block_is_clean_and_lands_in_the_census() {
        let src = "fn f() {\n    // SAFETY: fds points at len valid pollfds for the whole call.\n    unsafe { syscall() }\n}\n";
        let (v, census) = run(src);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(census.len(), 1);
        assert_eq!(census[0].kind, "block");
        assert_eq!(census[0].line, 3);
        assert!(census[0].justification.starts_with("fds points at"));
    }

    #[test]
    fn undocumented_block_is_flagged_and_still_counted() {
        let (v, census) = run("fn f() { unsafe { danger() } }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(census.len(), 1);
        assert!(census[0].justification.is_empty());
    }

    #[test]
    fn multi_line_safety_comment_is_joined() {
        let src = "// SAFETY: the buffer outlives the call because the arena\n// owns it for the whole scope.\nunsafe fn f() {}\n";
        let (v, census) = run(src);
        assert!(v.is_empty());
        assert_eq!(census[0].kind, "fn");
        assert!(census[0].justification.contains("owns it for the whole scope"));
    }

    #[test]
    fn attribute_between_comment_and_item_is_fine() {
        let src = "// SAFETY: repr(C) layout matches the kernel struct.\n#[allow(dead_code)]\nunsafe impl Send for X {}\n";
        let (v, census) = run(src);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(census[0].kind, "impl");
    }

    #[test]
    fn empty_safety_comment_is_flagged() {
        let (v, _) = run("// SAFETY:\nunsafe { x() }\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("empty"));
    }

    #[test]
    fn unrelated_comment_does_not_count() {
        let (v, _) = run("// this calls the kernel\nunsafe { x() }\n");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_invisible() {
        let (v, census) = run("// unsafe { }\nfn f() { let s = \"unsafe { }\"; }\n");
        assert!(v.is_empty());
        assert!(census.is_empty());
    }

    #[test]
    fn test_code_is_still_audited() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { unsafe { x() } }\n}\n";
        let (v, census) = run(src);
        assert_eq!(v.len(), 1, "unsafe in tests still needs SAFETY");
        assert_eq!(census.len(), 1);
    }

    #[test]
    fn block_comment_safety_is_accepted() {
        let (v, _) =
            run("/* SAFETY: ptr is non-null by the check above. */\nunsafe { deref(p) }\n");
        assert!(v.is_empty(), "{v:?}");
    }
}
