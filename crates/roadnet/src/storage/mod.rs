//! CCAM-style paged storage simulation.
//!
//! §III-B grounds the paper's cost model in Shekhar & Liu's CCAM access
//! method \[9\]: "assuming that nodes and their edges are clustered and stored
//! on disk", the I/O cost of a search is bounded by the number of pages the
//! spanning tree touches. This module reproduces that storage model:
//!
//! * a [`PageLayout`] assigns every node's record (node header + adjacency
//!   list) to a fixed-size disk page, using one of four placement policies —
//!   [`PagePlacement::Connectivity`] is the CCAM policy (local BFS-ball
//!   clustering, so neighbouring nodes share pages), with global-BFS-order,
//!   node-order, and random placement as ablation baselines;
//! * a [`PagedGraph`] wraps a [`RoadNetwork`] and serves adjacency through
//!   an exact-LRU [`LruBuffer`], counting page faults as simulated I/O.
//!
//! The arc data itself is served from the in-memory CSR — what is simulated
//! is the *cost*, which is exactly what the experiments measure (fault
//! counts per query). Node coordinates are treated as part of a separate
//! in-memory directory (as a spatial index would provide) and do not incur
//! page touches.
//!
//! For maps that genuinely exceed RAM, [`ChunkedCsr`] complements the
//! simulation with a real spill-to-disk store: the CSR arc array lives in
//! a backing file and chunks fault in through the same exact-LRU policy,
//! behind the same [`GraphView`] trait.

mod chunked;
mod lru;

pub use chunked::{ChunkConfig, ChunkedCsr};
pub use lru::{IoStats, LruBuffer};

use crate::geo::Point;
use crate::graph::{GraphView, RoadNetwork};
use crate::ids::NodeId;
use rand::SeedableRng;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::cell::RefCell;

/// Policy assigning node records to disk pages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PagePlacement {
    /// CCAM-style connectivity clustering: each page is grown as a *local*
    /// BFS cluster around a seed node, so a node and its neighbours land on
    /// the same page whenever they fit. This is the placement the paper's
    /// cost analysis assumes (Shekhar & Liu \[9\]).
    Connectivity,
    /// Nodes packed in one *global* BFS order. Keeps whole search frontiers
    /// together (good sequential behaviour) but splits most node–neighbour
    /// pairs across pages — a common naive approximation of CCAM, kept as
    /// an ablation point.
    BfsOrder,
    /// Nodes packed in id order (whatever order the generator produced).
    NodeOrder,
    /// Nodes packed in seeded-random order — the worst case, destroying all
    /// locality; the ablation baseline for E9.
    Random {
        /// Shuffle seed; same seed ⇒ same placement.
        seed: u64,
    },
}

impl PagePlacement {
    /// Short name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            PagePlacement::Connectivity => "ccam",
            PagePlacement::BfsOrder => "bfs-order",
            PagePlacement::NodeOrder => "node-order",
            PagePlacement::Random { .. } => "random",
        }
    }
}

/// Assignment of nodes to pages.
///
/// A node's record occupies `1 + degree` slots (header plus one slot per
/// arc); records are packed first-fit in placement order into pages of
/// `slots_per_page` slots. A record larger than a page gets a page of its
/// own (overflow page), mirroring how CCAM handles high-degree nodes.
#[derive(Clone, Debug)]
pub struct PageLayout {
    page_of: Vec<u32>,
    num_pages: usize,
    slots_per_page: usize,
}

impl PageLayout {
    /// Default page size: 128 slots ≈ 1 KiB pages of 8-byte entries, the
    /// scale CCAM's evaluation used.
    pub const DEFAULT_SLOTS_PER_PAGE: usize = 128;

    /// Compute a layout for `g` under `placement`.
    pub fn build(g: &RoadNetwork, placement: PagePlacement, slots_per_page: usize) -> Self {
        assert!(slots_per_page >= 2, "a page must fit at least a header and one arc");
        if let PagePlacement::Connectivity = placement {
            return Self::build_connectivity(g, slots_per_page);
        }
        let order = match placement {
            PagePlacement::Connectivity => unreachable!("handled above"),
            PagePlacement::BfsOrder => bfs_order(g),
            PagePlacement::NodeOrder => g.nodes().collect(),
            PagePlacement::Random { seed } => {
                let mut order: Vec<NodeId> = g.nodes().collect();
                order.shuffle(&mut StdRng::seed_from_u64(seed ^ 0x7061_6765));
                order
            }
        };

        let mut page_of = vec![0u32; g.num_nodes()];
        let mut page = 0u32;
        let mut used = 0usize;
        for n in order {
            let need = 1 + g.degree(n);
            if used > 0 && used + need > slots_per_page {
                page += 1;
                used = 0;
            }
            page_of[n.index()] = page;
            used += need;
            if used >= slots_per_page {
                page += 1;
                used = 0;
            }
        }
        let num_pages = if used > 0 { page as usize + 1 } else { page as usize };
        PageLayout { page_of, num_pages: num_pages.max(1), slots_per_page }
    }

    /// CCAM-style clustering: grow each page as a local BFS ball. A page
    /// starts from the lowest-id unassigned node and absorbs unassigned
    /// neighbours breadth-first until the next record would overflow the
    /// page; remaining frontier nodes seed later pages. Neighbouring nodes
    /// therefore share a page whenever capacity allows, which is exactly
    /// the property CCAM's I/O analysis relies on.
    fn build_connectivity(g: &RoadNetwork, slots_per_page: usize) -> Self {
        let n = g.num_nodes();
        let mut page_of = vec![u32::MAX; n];
        let mut page = 0u32;
        let mut used = 0usize;
        let mut queue = std::collections::VecDeque::new();

        let mut next_seed = 0usize;
        loop {
            // Refill the frontier from the next unassigned node.
            while next_seed < n && page_of[next_seed] != u32::MAX {
                next_seed += 1;
            }
            if queue.is_empty() {
                if next_seed == n {
                    break;
                }
                queue.push_back(NodeId::from_index(next_seed));
            }
            while let Some(u) = queue.pop_front() {
                if page_of[u.index()] != u32::MAX {
                    continue;
                }
                let need = 1 + g.degree(u);
                if used > 0 && used + need > slots_per_page {
                    // Close the page and *discard* its frontier: the next
                    // page grows a fresh ball seeded by `u`. Carrying the
                    // frontier over would degenerate into global BFS order,
                    // splitting most node–neighbour pairs across pages.
                    page += 1;
                    used = 0;
                    queue.clear();
                }
                page_of[u.index()] = page;
                used += need;
                for a in g.arcs(u) {
                    if page_of[a.to.index()] == u32::MAX {
                        queue.push_back(a.to);
                    }
                }
                if used >= slots_per_page {
                    page += 1;
                    used = 0;
                    queue.clear();
                }
            }
        }
        let num_pages = if used > 0 { page as usize + 1 } else { page as usize };
        PageLayout { page_of, num_pages: num_pages.max(1), slots_per_page }
    }

    /// Page holding node `n`'s record.
    #[inline]
    pub fn page_of(&self, n: NodeId) -> u32 {
        self.page_of[n.index()]
    }

    /// Total number of pages.
    pub fn num_pages(&self) -> usize {
        self.num_pages
    }

    /// Configured page size in slots.
    pub fn slots_per_page(&self) -> usize {
        self.slots_per_page
    }

    /// Fraction of arc endpoints that stay on the same page as their source
    /// node — CCAM's clustering quality metric (higher is better).
    pub fn colocation_ratio(&self, g: &RoadNetwork) -> f64 {
        let mut same = 0usize;
        let mut total = 0usize;
        for n in g.nodes() {
            let pn = self.page_of(n);
            for a in g.arcs(n) {
                total += 1;
                if self.page_of(a.to) == pn {
                    same += 1;
                }
            }
        }
        if total == 0 { 0.0 } else { same as f64 / total as f64 }
    }
}

fn bfs_order(g: &RoadNetwork) -> Vec<NodeId> {
    let n = g.num_nodes();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        queue.push_back(NodeId::from_index(start));
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for a in g.arcs(u) {
                if !seen[a.to.index()] {
                    seen[a.to.index()] = true;
                    queue.push_back(a.to);
                }
            }
        }
    }
    order
}

/// A road network served through a simulated page buffer.
///
/// Implements [`GraphView`], so every search algorithm in `pathsearch` can
/// run against it unchanged; page faults accumulate in the embedded
/// [`LruBuffer`] and are read back via [`PagedGraph::io_stats`].
pub struct PagedGraph<'g> {
    graph: &'g RoadNetwork,
    layout: PageLayout,
    buffer: RefCell<LruBuffer>,
}

impl<'g> PagedGraph<'g> {
    /// Wrap `graph` with the given layout and a buffer of `buffer_pages`.
    pub fn new(graph: &'g RoadNetwork, layout: PageLayout, buffer_pages: usize) -> Self {
        PagedGraph { graph, layout, buffer: RefCell::new(LruBuffer::new(buffer_pages)) }
    }

    /// Convenience constructor with CCAM placement and default page size.
    pub fn ccam(graph: &'g RoadNetwork, buffer_pages: usize) -> Self {
        let layout = PageLayout::build(
            graph,
            PagePlacement::Connectivity,
            PageLayout::DEFAULT_SLOTS_PER_PAGE,
        );
        Self::new(graph, layout, buffer_pages)
    }

    /// The wrapped network.
    pub fn graph(&self) -> &RoadNetwork {
        self.graph
    }

    /// The page layout in use.
    pub fn layout(&self) -> &PageLayout {
        &self.layout
    }

    /// I/O counters accumulated so far.
    pub fn io_stats(&self) -> IoStats {
        self.buffer.borrow().stats()
    }

    /// Zero the I/O counters, keeping buffer contents (warm buffer).
    pub fn reset_io_stats(&self) {
        self.buffer.borrow_mut().reset_stats();
    }

    /// Drop all buffered pages and zero the counters (cold buffer).
    pub fn clear_buffer(&self) {
        self.buffer.borrow_mut().clear();
    }
}

impl GraphView for PagedGraph<'_> {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn point(&self, n: NodeId) -> Point {
        // Coordinates come from the in-memory directory; no page touch.
        self.graph.point(n)
    }

    fn for_each_arc(&self, n: NodeId, f: &mut dyn FnMut(NodeId, f64)) {
        self.buffer.borrow_mut().touch(self.layout.page_of(n));
        for a in self.graph.arcs(n) {
            f(a.to, a.weight);
        }
    }

    fn is_symmetric(&self) -> bool {
        self.graph.is_symmetric()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GridConfig, grid_network};

    fn net() -> RoadNetwork {
        grid_network(&GridConfig { width: 12, height: 12, seed: 2, ..Default::default() }).unwrap()
    }

    #[test]
    fn layout_assigns_every_node_within_page_bounds() {
        let g = net();
        for placement in [
            PagePlacement::Connectivity,
            PagePlacement::BfsOrder,
            PagePlacement::NodeOrder,
            PagePlacement::Random { seed: 1 },
        ] {
            let layout = PageLayout::build(&g, placement, 64);
            assert!(layout.num_pages() >= 1);
            for n in g.nodes() {
                assert!((layout.page_of(n) as usize) < layout.num_pages());
            }
            // No page overfilled (except single-record overflow pages).
            let mut fill = vec![0usize; layout.num_pages()];
            for n in g.nodes() {
                fill[layout.page_of(n) as usize] += 1 + g.degree(n);
            }
            for (p, used) in fill.iter().enumerate() {
                assert!(
                    *used <= 64 || *used <= 1 + g.nodes().map(|n| g.degree(n)).max().unwrap(),
                    "page {p} overfilled: {used}"
                );
            }
        }
    }

    #[test]
    fn connectivity_clusters_better_than_every_baseline() {
        let g = net();
        let colocation = |p: PagePlacement| PageLayout::build(&g, p, 64).colocation_ratio(&g);
        let ccam = colocation(PagePlacement::Connectivity);
        assert!(ccam > 0.3, "local clustering should co-locate many neighbours, got {ccam}");
        for baseline in
            [PagePlacement::BfsOrder, PagePlacement::NodeOrder, PagePlacement::Random { seed: 3 }]
        {
            let b = colocation(baseline);
            assert!(ccam > b, "ccam {ccam} vs {} {b}", baseline.name());
        }
    }

    #[test]
    fn connectivity_assigns_every_node_exactly_once() {
        let g = net();
        let layout = PageLayout::build(&g, PagePlacement::Connectivity, 32);
        for n in g.nodes() {
            assert!((layout.page_of(n) as usize) < layout.num_pages());
        }
        // Pages must respect capacity (modulo single-record overflow).
        let mut fill = vec![0usize; layout.num_pages()];
        for n in g.nodes() {
            fill[layout.page_of(n) as usize] += 1 + g.degree(n);
        }
        let max_record = g.nodes().map(|n| 1 + g.degree(n)).max().unwrap();
        for (p, used) in fill.iter().enumerate() {
            assert!(*used <= 32 || *used <= max_record, "page {p} overfilled: {used}");
        }
    }

    #[test]
    fn paged_graph_counts_faults_and_serves_identical_arcs() {
        let g = net();
        let pg = PagedGraph::ccam(&g, 8);
        let n = NodeId(17);
        let mut via_paged = Vec::new();
        pg.for_each_arc(n, &mut |to, w| via_paged.push((to, w)));
        let direct: Vec<(NodeId, f64)> = g.arcs(n).iter().map(|a| (a.to, a.weight)).collect();
        assert_eq!(via_paged, direct);
        assert_eq!(pg.io_stats().accesses, 1);
        assert_eq!(pg.io_stats().faults, 1);
        // Second touch of the same node hits the buffer.
        pg.for_each_arc(n, &mut |_, _| {});
        assert_eq!(pg.io_stats().faults, 1);
        assert_eq!(pg.io_stats().accesses, 2);
    }

    #[test]
    fn small_buffer_faults_more_than_large() {
        let g = net();
        let touch_all = |pg: &PagedGraph| {
            for n in g.nodes() {
                pg.for_each_arc(n, &mut |_, _| {});
            }
            // Touch again in reverse to create reuse opportunities.
            for n in g.nodes().collect::<Vec<_>>().into_iter().rev() {
                pg.for_each_arc(n, &mut |_, _| {});
            }
        };
        let small = PagedGraph::ccam(&g, 2);
        let large = PagedGraph::ccam(&g, 1024);
        touch_all(&small);
        touch_all(&large);
        assert!(small.io_stats().faults > large.io_stats().faults);
        // Large buffer never refetches: faults == distinct pages.
        assert_eq!(large.io_stats().faults as usize, large.layout().num_pages());
    }

    #[test]
    fn clear_and_reset_behave() {
        let g = net();
        let pg = PagedGraph::ccam(&g, 16);
        pg.for_each_arc(NodeId(0), &mut |_, _| {});
        pg.reset_io_stats();
        pg.for_each_arc(NodeId(0), &mut |_, _| {});
        assert_eq!(pg.io_stats().faults, 0, "warm buffer after stats reset");
        pg.clear_buffer();
        pg.for_each_arc(NodeId(0), &mut |_, _| {});
        assert_eq!(pg.io_stats().faults, 1, "cold buffer after clear");
    }

    #[test]
    fn point_does_not_touch_pages() {
        let g = net();
        let pg = PagedGraph::ccam(&g, 4);
        let _ = pg.point(NodeId(5));
        assert_eq!(pg.io_stats().accesses, 0);
    }

    #[test]
    fn placement_names() {
        assert_eq!(PagePlacement::Connectivity.name(), "ccam");
        assert_eq!(PagePlacement::NodeOrder.name(), "node-order");
        assert_eq!(PagePlacement::Random { seed: 0 }.name(), "random");
    }
}
