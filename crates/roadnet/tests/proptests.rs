//! Property tests for the road-network substrate: CSR structural
//! invariants, spatial-index equivalence with brute force, and the LRU
//! buffer against a naive reference model.

use proptest::prelude::*;
use roadnet::{
    BoundingBox, GraphBuilder, LruBuffer, NodeId, PageLayout, PagePlacement, Point, RoadNetwork,
    SpatialIndex,
};

fn arb_undirected(max_nodes: usize) -> impl Strategy<Value = RoadNetwork> {
    (2..max_nodes)
        .prop_flat_map(|n| {
            let coords = proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), n);
            let edges =
                proptest::collection::vec((0..n as u32, 0..n as u32, 0.1f64..100.0), 1..3 * n);
            (coords, edges)
        })
        .prop_map(|(coords, edges)| {
            let mut b = GraphBuilder::new();
            for (x, y) in &coords {
                b.add_node(Point::new(*x, *y)).expect("finite");
            }
            let n = coords.len() as u32;
            for (a, c, w) in edges {
                let (a, c) = (a % n, c % n);
                if a != c {
                    b.add_edge(NodeId(a), NodeId(c), w).expect("valid");
                }
            }
            b.build().expect("non-empty")
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn undirected_csr_is_symmetric(g in arb_undirected(30)) {
        // Every arc (u, v, w, e) has a mirror (v, u, w, e).
        for u in g.nodes() {
            for a in g.arcs(u) {
                let mirror = g
                    .arcs(a.to)
                    .iter()
                    .find(|m| m.to == u && m.edge == a.edge)
                    .unwrap_or_else(|| panic!("arc {u}→{} has no mirror", a.to));
                prop_assert_eq!(mirror.weight, a.weight);
            }
        }
        // Arc count is exactly twice the edge count.
        prop_assert_eq!(g.num_arcs(), 2 * g.num_edges());
        // Degree sum equals arc count.
        let degree_sum: usize = g.nodes().map(|n| g.degree(n)).sum();
        prop_assert_eq!(degree_sum, g.num_arcs());
    }

    #[test]
    fn bbox_contains_every_node(g in arb_undirected(30)) {
        let bb = g.bbox();
        for n in g.nodes() {
            prop_assert!(bb.contains(g.point(n)));
        }
        let recomputed = BoundingBox::of_points(g.points().iter().copied());
        prop_assert_eq!(bb.min, recomputed.min);
        prop_assert_eq!(bb.max, recomputed.max);
    }

    #[test]
    fn largest_component_is_connected_and_maximal(g in arb_undirected(30)) {
        let labels = g.component_labels();
        let (sub, mapping) = g.largest_component().expect("non-empty");
        prop_assert!(sub.is_connected());
        // Its size equals the most frequent label's count.
        let mut counts = std::collections::HashMap::new();
        for l in labels {
            *counts.entry(l).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().expect("non-empty");
        prop_assert_eq!(sub.num_nodes(), max);
        // The mapping points at real nodes with identical coordinates.
        for (new_idx, old) in mapping.iter().enumerate() {
            prop_assert_eq!(sub.point(NodeId::from_index(new_idx)), g.point(*old));
        }
    }

    #[test]
    fn spatial_index_nearest_matches_brute_force(
        points in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..60),
        probes in proptest::collection::vec((-120.0f64..120.0, -120.0f64..120.0), 1..10),
    ) {
        let pts: Vec<Point> = points.iter().map(|(x, y)| Point::new(*x, *y)).collect();
        let index = SpatialIndex::from_points(pts.clone());
        for (px, py) in probes {
            let probe = Point::new(px, py);
            let got = index.nearest(probe);
            let want_dist = pts
                .iter()
                .map(|p| probe.distance(*p))
                .fold(f64::INFINITY, f64::min);
            prop_assert!(
                (probe.distance(pts[got.index()]) - want_dist).abs() < 1e-9,
                "nearest returned non-minimal distance"
            );
        }
    }

    #[test]
    fn spatial_ring_matches_brute_force(
        points in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..50),
        center in (-60.0f64..60.0, -60.0f64..60.0),
        radii in (0.0f64..30.0, 0.0f64..40.0),
    ) {
        let pts: Vec<Point> = points.iter().map(|(x, y)| Point::new(*x, *y)).collect();
        let index = SpatialIndex::from_points(pts.clone());
        let c = Point::new(center.0, center.1);
        let (lo, hi) = (radii.0.min(radii.1), radii.0.max(radii.1));
        let mut got = index.in_ring(c, lo, hi);
        got.sort();
        let mut want: Vec<NodeId> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                let d = c.distance(**p);
                d >= lo && d <= hi
            })
            .map(|(i, _)| NodeId::from_index(i))
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn lru_matches_reference_model(
        capacity in 1usize..8,
        accesses in proptest::collection::vec(0u32..16, 1..200),
    ) {
        let mut lru = LruBuffer::new(capacity);
        // Reference: Vec ordered most-recent-first.
        let mut model: Vec<u32> = Vec::new();
        let mut model_faults = 0u64;
        for &page in &accesses {
            let fault = match model.iter().position(|&p| p == page) {
                Some(pos) => {
                    let p = model.remove(pos);
                    model.insert(0, p);
                    false
                }
                None => {
                    model_faults += 1;
                    model.insert(0, page);
                    if model.len() > capacity {
                        model.pop();
                    }
                    true
                }
            };
            prop_assert_eq!(lru.touch(page), fault, "fault disagreement on page {}", page);
        }
        prop_assert_eq!(lru.stats().faults, model_faults);
        prop_assert_eq!(lru.lru_order(), model);
    }

    #[test]
    fn page_layouts_cover_all_nodes_for_all_placements(
        g in arb_undirected(25),
        slots in 4usize..64,
    ) {
        for placement in [
            PagePlacement::Connectivity,
            PagePlacement::BfsOrder,
            PagePlacement::NodeOrder,
            PagePlacement::Random { seed: 5 },
        ] {
            let layout = PageLayout::build(&g, placement, slots);
            prop_assert!(layout.num_pages() >= 1);
            for n in g.nodes() {
                prop_assert!((layout.page_of(n) as usize) < layout.num_pages());
            }
            let ratio = layout.colocation_ratio(&g);
            prop_assert!((0.0..=1.0).contains(&ratio));
        }
    }
}
