//! Spatial query distributions.
//!
//! Experiments need control over *where* clients travel: uniformly random
//! trips, trips concentrated on a few hotspots (malls, hospitals — the
//! query pattern that makes shared obfuscation shine), and commuter flows
//! from residential rings into a centre. Each distribution draws (source,
//! destination) node pairs over a given map, deterministically per seed.

use rand::Rng;
use rand::rngs::StdRng;
use roadnet::{NodeId, Point, RoadNetwork, SpatialIndex};

/// How (source, destination) pairs are drawn.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum QueryDistribution {
    /// Both endpoints uniform over all nodes.
    Uniform,
    /// Destinations cluster around `hotspots` random attraction points with
    /// Zipf-like popularity (exponent `exponent`); sources are uniform.
    /// `spread` is the hotspot radius as a fraction of the map diagonal.
    Hotspot {
        /// Number of attraction points.
        hotspots: usize,
        /// Zipf popularity exponent across hotspots.
        exponent: f64,
        /// Hotspot radius as a fraction of the map diagonal.
        spread: f64,
    },
    /// Commuter pattern: sources drawn from the map's outer ring,
    /// destinations from a disk around the centre with radius
    /// `center_radius` (fraction of the diagonal).
    Commuter {
        /// Destination-disk radius as a fraction of the map diagonal.
        center_radius: f64,
    },
}

impl QueryDistribution {
    /// Short name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            QueryDistribution::Uniform => "uniform",
            QueryDistribution::Hotspot { .. } => "hotspot",
            QueryDistribution::Commuter { .. } => "commuter",
        }
    }
}

/// Sampler binding a distribution to a map.
pub struct QuerySampler<'a> {
    map: &'a RoadNetwork,
    index: &'a SpatialIndex,
    distribution: QueryDistribution,
    /// Hotspot centres and their (normalized cumulative) popularity, built
    /// once per sampler for `Hotspot`.
    hotspot_centres: Vec<Point>,
    hotspot_cdf: Vec<f64>,
}

impl<'a> QuerySampler<'a> {
    /// Build a sampler; hotspot layouts are derived from `rng` (call with a
    /// seeded RNG for reproducibility).
    pub fn new(
        map: &'a RoadNetwork,
        index: &'a SpatialIndex,
        distribution: QueryDistribution,
        rng: &mut StdRng,
    ) -> Self {
        let (hotspot_centres, hotspot_cdf) = match distribution {
            QueryDistribution::Hotspot { hotspots, exponent, .. } => {
                assert!(hotspots >= 1, "need at least one hotspot");
                assert!(exponent >= 0.0, "zipf exponent must be non-negative");
                let bb = map.bbox();
                let centres: Vec<Point> = (0..hotspots)
                    .map(|_| {
                        Point::new(
                            rng.gen_range(bb.min.x..=bb.max.x),
                            rng.gen_range(bb.min.y..=bb.max.y),
                        )
                    })
                    .collect();
                // Zipf weights 1/rank^exponent, as a CDF.
                let mut cdf = Vec::with_capacity(hotspots);
                let mut acc = 0.0;
                for rank in 1..=hotspots {
                    acc += 1.0 / (rank as f64).powf(exponent);
                    cdf.push(acc);
                }
                for c in &mut cdf {
                    *c /= acc;
                }
                (centres, cdf)
            }
            _ => (Vec::new(), Vec::new()),
        };
        QuerySampler { map, index, distribution, hotspot_centres, hotspot_cdf }
    }

    fn uniform_node(&self, rng: &mut StdRng) -> NodeId {
        NodeId(rng.gen_range(0..self.map.num_nodes() as u32))
    }

    fn node_near(&self, p: Point, radius: f64, rng: &mut StdRng) -> NodeId {
        // Uniform point in the disk, snapped to the nearest node.
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        let r = radius * rng.gen_range(0.0f64..1.0).sqrt();
        self.index.nearest(Point::new(p.x + r * theta.cos(), p.y + r * theta.sin()))
    }

    /// Draw one (source, destination) pair with distinct endpoints.
    pub fn sample(&self, rng: &mut StdRng) -> (NodeId, NodeId) {
        let diag = self.map.bbox().diagonal();
        for _ in 0..1000 {
            let (s, t) = match self.distribution {
                QueryDistribution::Uniform => (self.uniform_node(rng), self.uniform_node(rng)),
                QueryDistribution::Hotspot { spread, .. } => {
                    let x = rng.gen_range(0.0f64..1.0);
                    let idx = self.hotspot_cdf.partition_point(|&c| c < x);
                    let centre = self.hotspot_centres[idx.min(self.hotspot_centres.len() - 1)];
                    (self.uniform_node(rng), self.node_near(centre, spread * diag, rng))
                }
                QueryDistribution::Commuter { center_radius } => {
                    let bb = self.map.bbox();
                    let centre = bb.center();
                    let r_inner = center_radius * diag;
                    // Sources: rejection-sample nodes outside 2×r_inner.
                    let mut s = self.uniform_node(rng);
                    for _ in 0..100 {
                        if self.map.point(s).distance(centre) > 2.0 * r_inner {
                            break;
                        }
                        s = self.uniform_node(rng);
                    }
                    (s, self.node_near(centre, r_inner, rng))
                }
            };
            if s != t {
                return (s, t);
            }
        }
        panic!("could not draw distinct endpoints; map too small");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use roadnet::generators::{GridConfig, grid_network};

    fn setup() -> (RoadNetwork, SpatialIndex) {
        let g = grid_network(&GridConfig { width: 25, height: 25, seed: 1, ..Default::default() })
            .unwrap();
        let idx = SpatialIndex::build(&g);
        (g, idx)
    }

    #[test]
    fn uniform_draws_distinct_valid_pairs() {
        let (g, idx) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let sampler = QuerySampler::new(&g, &idx, QueryDistribution::Uniform, &mut rng);
        for _ in 0..200 {
            let (s, t) = sampler.sample(&mut rng);
            assert_ne!(s, t);
            assert!(s.index() < g.num_nodes() && t.index() < g.num_nodes());
        }
    }

    #[test]
    fn hotspot_concentrates_destinations() {
        let (g, idx) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let dist = QueryDistribution::Hotspot { hotspots: 2, exponent: 1.0, spread: 0.05 };
        let sampler = QuerySampler::new(&g, &idx, dist, &mut rng);
        let targets: Vec<Point> = (0..300).map(|_| g.point(sampler.sample(&mut rng).1)).collect();
        // Destinations should occupy a small fraction of the map: measure
        // the mean pairwise distance against uniform sampling.
        let mean_dist = |pts: &[Point]| {
            let mut total = 0.0;
            let mut count = 0;
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len().min(i + 20) {
                    total += pts[i].distance(pts[j]);
                    count += 1;
                }
            }
            total / count as f64
        };
        let uniform_sampler = QuerySampler::new(&g, &idx, QueryDistribution::Uniform, &mut rng);
        let uniform_targets: Vec<Point> =
            (0..300).map(|_| g.point(uniform_sampler.sample(&mut rng).1)).collect();
        assert!(
            mean_dist(&targets) < mean_dist(&uniform_targets) * 0.8,
            "hotspot {} vs uniform {}",
            mean_dist(&targets),
            mean_dist(&uniform_targets)
        );
    }

    #[test]
    fn commuter_sources_are_peripheral_destinations_central() {
        let (g, idx) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let dist = QueryDistribution::Commuter { center_radius: 0.1 };
        let sampler = QuerySampler::new(&g, &idx, dist, &mut rng);
        let centre = g.bbox().center();
        let diag = g.bbox().diagonal();
        let mut src_sum = 0.0;
        let mut dst_sum = 0.0;
        let n = 200;
        for _ in 0..n {
            let (s, t) = sampler.sample(&mut rng);
            src_sum += g.point(s).distance(centre);
            dst_sum += g.point(t).distance(centre);
        }
        let (src_mean, dst_mean) = (src_sum / n as f64, dst_sum / n as f64);
        assert!(dst_mean < 0.15 * diag, "destinations not central: {dst_mean}");
        assert!(src_mean > dst_mean * 2.0, "sources {src_mean} vs destinations {dst_mean}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let (g, idx) = setup();
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let dist = QueryDistribution::Hotspot { hotspots: 3, exponent: 1.2, spread: 0.1 };
            let sampler = QuerySampler::new(&g, &idx, dist, &mut rng);
            (0..10).map(|_| sampler.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn names() {
        assert_eq!(QueryDistribution::Uniform.name(), "uniform");
        assert_eq!(
            QueryDistribution::Hotspot { hotspots: 1, exponent: 1.0, spread: 0.1 }.name(),
            "hotspot"
        );
        assert_eq!(QueryDistribution::Commuter { center_radius: 0.1 }.name(), "commuter");
    }
}
