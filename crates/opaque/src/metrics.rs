//! Privacy metrics beyond the paper's breach probability.
//!
//! Definition 2 quantifies protection as `1/(|S|·|T|)` under a uniform
//! prior. This module adds the standard information-theoretic companions —
//! adversary-posterior entropy and the equivalent anonymity-set size — used
//! by experiments E3/E6/E7 to compare strategies whose *nominal* breach
//! probability is identical but whose resistance to informed adversaries
//! differs.

/// Breach probability under a uniform prior (Definition 2).
pub fn breach_probability(num_sources: usize, num_targets: usize) -> f64 {
    assert!(num_sources > 0 && num_targets > 0, "sets must be non-empty");
    1.0 / (num_sources as f64 * num_targets as f64)
}

/// Shannon entropy (bits) of a discrete distribution. Zero-probability
/// entries contribute nothing; the distribution need not be normalized
/// (it is normalized internally).
pub fn entropy_bits(weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
    assert!(total > 0.0, "distribution must have positive mass");
    let mut h = 0.0;
    for &w in weights {
        if w > 0.0 {
            let p = w / total;
            h -= p * p.log2();
        }
    }
    h
}

/// Effective anonymity-set size `2^H` of a posterior: the number of
/// equally-likely candidates that would give the adversary the same
/// uncertainty. For a uniform posterior over `k` pairs this is exactly `k`
/// (and breach probability is `1/k`).
pub fn effective_anonymity(weights: &[f64]) -> f64 {
    entropy_bits(weights).exp2()
}

/// Posterior over candidate (source, target) pairs given per-node
/// plausibility weights: `P(s,t) ∝ w_s(s) · w_t(t)`.
///
/// Returns the flattened (source-major) posterior, normalized. This models
/// the background-knowledge adversary of §II: a server that knows, e.g.,
/// which addresses are residential can down-weight implausible endpoints.
pub fn endpoint_posterior(source_weights: &[f64], target_weights: &[f64]) -> Vec<f64> {
    assert!(!source_weights.is_empty() && !target_weights.is_empty());
    let mut post = Vec::with_capacity(source_weights.len() * target_weights.len());
    for &ws in source_weights {
        for &wt in target_weights {
            post.push((ws * wt).max(0.0));
        }
    }
    let total: f64 = post.iter().sum();
    assert!(total > 0.0, "posterior must have positive mass");
    for p in &mut post {
        *p /= total;
    }
    post
}

/// The adversary's best-guess success probability: the maximum of the
/// posterior (MAP rule).
pub fn map_success_probability(posterior: &[f64]) -> f64 {
    posterior.iter().copied().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breach_matches_definition_2() {
        assert!((breach_probability(2, 3) - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(breach_probability(1, 1), 1.0);
    }

    #[test]
    fn uniform_entropy_is_log_k() {
        let w = vec![1.0; 8];
        assert!((entropy_bits(&w) - 3.0).abs() < 1e-12);
        assert!((effective_anonymity(&w) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_posterior_reduces_anonymity() {
        let uniform = vec![1.0; 4];
        let skewed = vec![10.0, 1.0, 1.0, 1.0];
        assert!(effective_anonymity(&skewed) < effective_anonymity(&uniform));
        assert!(map_success_probability(&endpoint_posterior(&[10.0, 1.0], &[1.0, 1.0])) > 0.25);
    }

    #[test]
    fn posterior_is_normalized_product() {
        let post = endpoint_posterior(&[1.0, 3.0], &[1.0, 1.0]);
        let sum: f64 = post.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // P(s2, ·) should carry 3/4 of the mass.
        assert!((post[2] + post[3] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn uniform_posterior_map_equals_breach() {
        let post = endpoint_posterior(&[1.0; 2], &[1.0; 3]);
        assert!((map_success_probability(&post) - breach_probability(2, 3)).abs() < 1e-12);
    }

    #[test]
    fn zero_weights_are_ignored_by_entropy() {
        let h = entropy_bits(&[0.5, 0.5, 0.0]);
        assert!((h - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn all_zero_distribution_panics() {
        let _ = entropy_bits(&[0.0, 0.0]);
    }
}
