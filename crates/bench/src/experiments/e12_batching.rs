//! E12 — obfuscator batching window: latency vs sharing (extension).
//!
//! The paper's shared obfuscation presumes the obfuscator holds a batch of
//! concurrent requests (§IV "partitions the received queries"). In a live
//! deployment requests arrive as a stream, so the obfuscator must choose a
//! batching window: longer windows collect more requests per shared query —
//! fewer fakes, lower breach probability, less server work per client — at
//! the price of answer latency. This experiment streams a Poisson request
//! arrival process through a builder-configured [`opaque::OpaqueService`]'s
//! own admission path (`submit`/`tick`/`flush` with a deadline-triggered
//! batch policy) and tabulates that trade-off.

use crate::setup::{Scale, network_with_index};
use crate::table::{ExperimentTable, f3};
use opaque::{BatchPolicy, ClusteringConfig, ObfuscationMode, ServiceBuilder, ServiceEvent};
use roadnet::generators::NetworkClass;
use workload::{
    ArrivalConfig, ProtectionDistribution, QueryDistribution, WorkloadConfig, poisson_stream,
};

/// Run E12.
pub fn run(scale: &Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E12",
        "batching window: latency vs sharing benefit",
        "deployment of §IV's batch obfuscation over a request stream",
        &[
            "window s",
            "batches",
            "mean batch",
            "mean wait s",
            "fakes/client",
            "settled/client",
            "mean breach",
        ],
    );
    let (g, idx) = network_with_index(NetworkClass::Grid, scale);
    let horizon = scale.queries as f64;
    let stream = poisson_stream(
        &g,
        &idx,
        &WorkloadConfig {
            num_requests: 0, // governed by the horizon
            queries: QueryDistribution::Hotspot { hotspots: 3, exponent: 1.0, spread: 0.08 },
            protection: ProtectionDistribution::Fixed { f_s: 4, f_t: 4 },
            seed: 0xE12,
        },
        &ArrivalConfig { rate_per_sec: 1.0, horizon_secs: horizon },
    );
    t.note(format!("poisson stream: {} requests at 1 req/s", stream.len()));

    for window in [1.0f64, 2.0, 5.0, 15.0] {
        let mut svc = ServiceBuilder::new()
            .map(g.clone())
            .seed(0xE12)
            .obfuscation_mode(ObfuscationMode::SharedClustered(ClusteringConfig::default()))
            // Deadline-only batching: the flush trigger is the window length.
            .batch_policy(BatchPolicy { max_batch: usize::MAX, max_delay: window })
            .build()
            .expect("valid service configuration");

        let mut batches = 0usize;
        let mut clients = 0usize;
        let mut embedded = 0usize;
        let mut fakes = 0u64;
        let mut settled = 0u64;
        let mut breach_sum = 0.0;
        let mut wait_sum = 0.0;
        let mut account = |events: Vec<ServiceEvent>| {
            assert!(!events.is_empty(), "a fired trigger must emit events");
            for event in events {
                match event {
                    // Per-request queue waits come straight off the
                    // delivery events (hop 4), no mean reconstruction.
                    ServiceEvent::ResponseReady { waited, .. } => {
                        clients += 1;
                        wait_sum += waited;
                    }
                    ServiceEvent::Unreachable { waited, .. }
                    | ServiceEvent::Rejected { waited, .. } => {
                        clients += 1;
                        wait_sum += waited;
                    }
                    ServiceEvent::Cancelled { .. } => {}
                    ServiceEvent::BatchFlushed(report) => {
                        batches += 1;
                        // Per-client privacy/cost columns divide by
                        // *embedded* clients (per_client_breach covers
                        // delivered + unreachable, not rejected), so a
                        // workload that ever rejects cannot dilute them.
                        // This grid workload admits everything, so
                        // embedded == clients here.
                        embedded += report.per_client_breach.len();
                        fakes += report.fakes_added;
                        settled += report.server_settled;
                        breach_sum += report.per_client_breach.iter().map(|(_, p)| p).sum::<f64>();
                    }
                }
            }
        };
        // Tick at exact deadline instants (service-reported, and the
        // deadline trigger is exact at `next_deadline()` by contract), not
        // merely at the next arrival: ticking only on arrivals would
        // inflate measured waits by the residual inter-arrival gap
        // (~1/λ), which at small windows is on the order of the window
        // itself.
        for timed in &stream {
            while let Some(d) = svc.next_deadline().filter(|d| timed.arrival >= *d) {
                account(svc.tick(d).expect("pipeline succeeds"));
            }
            assert!(
                svc.submit(timed.request, timed.arrival).is_accepted(),
                "unique client ids under an unbounded queue"
            );
        }
        while let Some(d) = svc.next_deadline().filter(|d| *d < horizon) {
            account(svc.tick(d).expect("pipeline succeeds"));
        }
        let final_events = svc.flush(horizon).expect("pipeline succeeds");
        if !final_events.is_empty() {
            account(final_events);
        }

        let k = clients as f64;
        let e = embedded as f64;
        t.row(vec![
            f3(window),
            batches.to_string(),
            f3(k / batches as f64),
            f3(wait_sum / k),
            f3(fakes as f64 / e),
            f3(settled as f64 / e),
            f3(breach_sum / e),
        ]);
    }
    t.note(
        "longer windows: larger batches, fewer fakes per client, lower breach — but longer waits",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_longer_windows_trade_latency_for_privacy_and_cost() {
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), 4);
        let first = &t.rows[0]; // 1s window
        let last = &t.rows[3]; // 15s window
        let wait_first: f64 = first[3].parse().unwrap();
        let wait_last: f64 = last[3].parse().unwrap();
        assert!(wait_last > wait_first, "longer window must wait longer");
        let fakes_first: f64 = first[4].parse().unwrap();
        let fakes_last: f64 = last[4].parse().unwrap();
        assert!(fakes_last <= fakes_first, "bigger batches need fewer fakes per client");
        let breach_first: f64 = first[6].parse().unwrap();
        let breach_last: f64 = last[6].parse().unwrap();
        assert!(breach_last <= breach_first + 1e-9, "bigger batches cannot hurt breach");
    }

    #[test]
    fn e12_every_client_is_served_in_every_configuration() {
        // Implicit in run(): process_batch errors would panic. Check the
        // batch accounting is self-consistent instead.
        let t = run(&Scale::quick());
        for row in &t.rows {
            let batches: f64 = row[1].parse().unwrap();
            let mean_batch: f64 = row[2].parse().unwrap();
            assert!(batches * mean_batch > 0.0);
        }
    }
}
