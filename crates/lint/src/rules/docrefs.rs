//! R4 — doc cross-reference integrity: backticked file paths and
//! `module::path` references in the design docs must resolve against the
//! workspace.
//!
//! The repo's docs promise "every claim in `docs/paper_map.md` names the
//! code that implements it". A rename that nobody grepped for turns that
//! promise into quiet rot: the doc still reads confidently, the path it
//! names no longer exists. This rule re-checks the promise on every run:
//!
//! - **file references** — a backticked span containing `/` with a known
//!   extension (or a trailing slash for directories) must name a file
//!   that exists. `{a,b}` brace groups expand
//!   (`crates/pathsearch/src/{alt,bidirectional}.rs` checks both files).
//! - **module paths** — a backticked span matching the strict grammar
//!   `ident(::ident)*(::{id, id, …})?` (optionally suffixed `()` or `!`)
//!   must have every segment appear as an identifier somewhere in the
//!   workspace's Rust sources. That catches renamed types and modules
//!   without needing name resolution: if `SharingPolicy` is gone from
//!   the code, it is gone from the ident index too.
//!
//! Spans inside fenced code blocks are prose illustrations, not
//! references, and are skipped. Spans that fit neither grammar (shell
//! fragments, flag names, type signatures with generics) are ignored —
//! the rule is deliberately conservative: no false alarms on docs that
//! merely *look* path-like.

use crate::rules::RawViolation;
use std::collections::BTreeSet;

/// What doc references resolve against: the workspace file list and the
/// identifier index over all Rust sources. Built once by the engine.
#[derive(Debug, Default)]
pub struct DocIndex {
    /// Repo-relative paths (forward slashes) of every tracked file.
    pub files: BTreeSet<String>,
    /// Every identifier token appearing in any scanned `.rs` file.
    pub idents: BTreeSet<String>,
}

impl DocIndex {
    /// Does `path` name a real file — exactly, or as a suffix of one
    /// (docs refer to `tests/parallel_equivalence.rs` without the crate
    /// prefix), or as a directory prefix (trailing-slash refs)?
    fn resolves_file(&self, path: &str) -> bool {
        let p = path.trim_start_matches("./");
        if let Some(dir) = p.strip_suffix('/') {
            let prefix = format!("{dir}/");
            return self.files.iter().any(|f| f.starts_with(&prefix) || f == dir);
        }
        self.files.contains(p)
            || self.files.iter().any(|f| {
                f.ends_with(p) && {
                    let cut = f.len() - p.len();
                    cut == 0 || f.as_bytes()[cut - 1] == b'/'
                }
            })
    }
}

/// Extensions that make a slash-containing span a checkable file ref.
const FILE_EXTS: &[&str] = &[".rs", ".md", ".toml", ".yml", ".yaml", ".json", ".sh", ".txt"];

/// Run R4 over one markdown file.
pub fn check(text: &str, idx: &DocIndex) -> Vec<RawViolation> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (lineno, line) in text.lines().enumerate() {
        let line_no = lineno as u32 + 1;
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        for span in backtick_spans(line) {
            if let Some(paths) = as_file_ref(span) {
                for p in paths {
                    if !idx.resolves_file(&p) {
                        out.push(RawViolation::new(
                            "doc-ref",
                            line_no,
                            format!("doc references `{p}`, which does not exist in the workspace"),
                        ));
                    }
                }
            } else if let Some(segments) = as_module_path(span) {
                let missing: Vec<&String> =
                    segments.iter().filter(|s| !idx.idents.contains(*s)).collect();
                if let Some(m) = missing.first() {
                    out.push(RawViolation::new(
                        "doc-ref",
                        line_no,
                        format!(
                            "doc references `{span}`, but `{m}` appears nowhere in the \
                             workspace's Rust sources — renamed or removed?"
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Inline backtick spans on one line (single-backtick only; `` `` `` is
/// rare in these docs and safely ignored by the grammar filters).
fn backtick_spans(line: &str) -> Vec<&str> {
    let mut spans = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        spans.push(&after[..close]);
        rest = &after[close + 1..];
    }
    spans
}

/// If the span reads as a file reference, expand `{a,b}` groups and
/// return the candidate paths. `None` means "not a file ref, don't
/// check".
fn as_file_ref(span: &str) -> Option<Vec<String>> {
    if !span.contains('/')
        || span.contains(char::is_whitespace)
        || span.contains("//")
        || span.starts_with('-')
        || span.contains('<')
    {
        return None;
    }
    let expanded = expand_braces(span)?;
    let checkable = |p: &String| {
        p.ends_with('/') || FILE_EXTS.iter().any(|e| p.ends_with(e)) || p.contains("/bin/")
    };
    if expanded.iter().all(checkable) { Some(expanded) } else { None }
}

/// Expand one level of `{a,b,c}` groups; `None` on unbalanced braces.
fn expand_braces(span: &str) -> Option<Vec<String>> {
    let Some(open) = span.find('{') else {
        return if span.contains('}') { None } else { Some(vec![span.to_string()]) };
    };
    let close = span[open..].find('}')? + open;
    let (prefix, rest) = (&span[..open], &span[close + 1..]);
    let mut out = Vec::new();
    for alt in span[open + 1..close].split(',') {
        for tail in expand_braces(rest)? {
            out.push(format!("{prefix}{}{tail}", alt.trim()));
        }
    }
    Some(out)
}

/// If the span matches the strict module-path grammar, return its
/// identifier segments (group members included). `None` otherwise.
fn as_module_path(span: &str) -> Option<Vec<String>> {
    let mut s = span.trim();
    // Optional call / macro suffix.
    s = s.strip_suffix("()").unwrap_or(s);
    s = s.strip_suffix('!').unwrap_or(s);
    if !s.contains("::") || s.contains(char::is_whitespace) && !s.contains('{') {
        return None;
    }
    // Optional trailing `::{A, B, C}` group.
    let mut segments: Vec<String> = Vec::new();
    let path_part = if let Some(open) = s.find('{') {
        let inner = s.strip_suffix('}')?;
        let group = &inner[open + 1..];
        for member in group.split(',') {
            let m = member.trim();
            let m = m.strip_suffix("()").unwrap_or(m);
            if !is_ident(m) {
                return None;
            }
            segments.push(m.to_string());
        }
        s[..open].strip_suffix("::")?
    } else {
        s
    };
    if path_part.contains(char::is_whitespace) {
        return None;
    }
    for seg in path_part.split("::") {
        if !is_ident(seg) {
            return None;
        }
        segments.push(seg.to_string());
    }
    Some(segments)
}

/// ASCII Rust identifier?
fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> DocIndex {
        let mut idx = DocIndex::default();
        for f in [
            "crates/pathsearch/src/alt.rs",
            "crates/pathsearch/src/bidirectional.rs",
            "crates/opaque/src/service/gateway.rs",
            "crates/opaque/tests/parallel_equivalence.rs",
            "docs/scaling.md",
        ] {
            idx.files.insert(f.to_string());
        }
        for i in ["opaque", "service", "Gateway", "submit", "SharingPolicy", "PerSource", "Auto"] {
            idx.idents.insert(i.to_string());
        }
        idx
    }

    fn run(text: &str) -> Vec<RawViolation> {
        check(text, &idx())
    }

    #[test]
    fn existing_file_and_module_refs_are_clean() {
        let text = "See `crates/pathsearch/src/alt.rs` and `opaque::service::Gateway`.\n\
                    Also `SharingPolicy::{PerSource, Auto}` and `Gateway::submit()`.\n";
        assert!(run(text).is_empty(), "{:?}", run(text));
    }

    #[test]
    fn missing_file_is_flagged() {
        let v = run("See `crates/pathsearch/src/gone.rs` for details.\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("gone.rs"));
    }

    #[test]
    fn brace_expansion_checks_every_alternative() {
        let v = run("`crates/pathsearch/src/{alt,missing}.rs`\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("missing.rs"));
        assert!(run("`crates/pathsearch/src/{alt,bidirectional}.rs`\n").is_empty());
    }

    #[test]
    fn suffix_match_resolves_bare_test_paths() {
        assert!(run("pinned by `tests/parallel_equivalence.rs`\n").is_empty());
        let v = run("pinned by `tests/does_not_exist.rs`\n");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn unknown_module_segment_is_flagged() {
        let v = run("the old `opaque::service::Dispatcher` type\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("Dispatcher"));
    }

    #[test]
    fn code_fences_are_skipped() {
        let text =
            "```rust\nuse crates/fake/lib.rs; old::gone::Path\n```\nprose `opaque::service`\n";
        assert!(run(text).is_empty());
    }

    #[test]
    fn shell_fragments_and_generics_are_ignored() {
        let text = "run `cargo run -p bench -- --quick`, see `Vec<HashMap<K, V>>`, \
                    flag `--perf-json out/BENCH.json`, range `0..n`\n";
        assert!(run(text).is_empty(), "{:?}", run(text));
    }

    #[test]
    fn directory_refs_resolve_by_prefix() {
        assert!(run("under `crates/opaque/src/service/`\n").is_empty());
        assert_eq!(run("under `crates/nothing/here/`\n").len(), 1);
    }
}
