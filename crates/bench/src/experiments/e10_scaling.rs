//! E10 — end-to-end scaling of the OPAQUE deployment.
//!
//! The short paper never reports absolute throughput; this experiment
//! characterizes the reproduction: end-to-end batch latency (obfuscation +
//! server + filter) across network sizes, and how the obfuscator's own
//! overhead compares with the server work it saves. Wall-clock numbers are
//! environment-specific; the *shape* (near-linear growth with settled
//! nodes, obfuscator ≪ server) is the reproducible claim.

use crate::setup::Scale;
use crate::table::{ExperimentTable, f3};
use opaque::{ClusteringConfig, FakeSelection, ObfuscationMode, Obfuscator, ServiceBuilder};
use pathsearch::SharingPolicy;
use roadnet::SpatialIndex;
use roadnet::generators::NetworkClass;
use std::time::Instant;
use workload::{ProtectionDistribution, QueryDistribution, WorkloadConfig, generate_requests};

/// Run E10.
pub fn run(scale: &Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E10",
        "end-to-end scaling with network size",
        "deployment characterization (no paper counterpart)",
        &[
            "nodes",
            "clients",
            "obfuscate ms",
            "serve+filter ms",
            "settled",
            "pairs",
            "wire KB",
            "mean breach",
        ],
    );
    let sizes = [scale.network_nodes / 4, scale.network_nodes, scale.network_nodes * 4];
    let k = 24usize;

    for nodes in sizes {
        let g = NetworkClass::Geometric.generate(nodes.max(64), 0xE10).expect("valid network");
        let idx = SpatialIndex::build(&g);
        let cfg = WorkloadConfig {
            num_requests: k,
            queries: QueryDistribution::Hotspot { hotspots: 4, exponent: 1.0, spread: 0.08 },
            protection: ProtectionDistribution::Fixed { f_s: 4, f_t: 4 },
            seed: 0xE10,
        };
        let requests = generate_requests(&g, &idx, &cfg);

        // Obfuscation timed separately from serving: the trusted middlebox
        // must stay cheap relative to the server work it orchestrates.
        let mut ob = Obfuscator::new(g.clone(), FakeSelection::default_ring(), 0xE10);
        let t0 = Instant::now();
        let units = ob
            .obfuscate_batch(
                &requests,
                ObfuscationMode::SharedClustered(ClusteringConfig::default()),
            )
            .expect("pipeline succeeds");
        let obfuscate_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut svc = ServiceBuilder::new()
            .map(g.clone())
            .fake_selection(FakeSelection::default_ring())
            .seed(0xE10)
            .sharing_policy(SharingPolicy::PerSource)
            .obfuscation_mode(ObfuscationMode::SharedClustered(ClusteringConfig::default()))
            .build()
            .expect("valid service configuration");
        let t1 = Instant::now();
        let report = svc.process_batch(&requests).expect("pipeline succeeds").report;
        let serve_ms = (t1.elapsed().as_secs_f64() * 1e3 - obfuscate_ms).max(0.0);

        let _ = units; // the timed artifact; contents already validated elsewhere
        t.row(vec![
            g.num_nodes().to_string(),
            k.to_string(),
            f3(obfuscate_ms),
            f3(serve_ms),
            report.server_settled.to_string(),
            report.total_pairs.to_string(),
            f3(report.traffic.total_bytes() as f64 / 1024.0),
            f3(report.mean_breach()),
        ]);
    }
    t.note("wall-clock values are machine-specific; settled/pairs are deterministic per seed");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_settled_work_grows_with_network_size() {
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), 3);
        let settled: Vec<f64> = t.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        assert!(settled[2] > settled[0], "bigger networks mean bigger search trees: {settled:?}");
    }
}
