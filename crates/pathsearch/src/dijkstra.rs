//! Dijkstra's algorithm \[1\] — the server's baseline path-query evaluator —
//! including the single-source **multi-destination** variant the paper's
//! Lemma 1 builds on: "Dijkstra's algorithm is extensible to search paths
//! from a single source to multiple destinations by forming a spanning tree
//! until all the destinations are reached" (§III-B).
//!
//! The implementation is a lazy-deletion binary-heap Dijkstra over a
//! reusable, epoch-stamped search space ([`Searcher`]), so repeated queries
//! on the same network pay no per-query `O(n)` initialization — the cost of
//! a query is proportional to the area it actually explores, which is the
//! quantity Lemma 1 reasons about.

use crate::path::Path;
use crate::stats::SearchStats;
use roadnet::{GraphView, NodeId};
use std::collections::BinaryHeap;

/// Search termination condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Goal {
    /// Settle every reachable node (full spanning tree).
    AllNodes,
    /// Stop as soon as this node is settled.
    Single(NodeId),
    /// Stop as soon as *all* of these nodes are settled — the
    /// multi-destination extension of §III-B.
    Set(Vec<NodeId>),
}

const NIL: u32 = u32::MAX;

/// Max-heap entry ordered so the *smallest* distance pops first.
#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    key: f64,
    node: NodeId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.node == other.node
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse on key for min-heap behaviour; tie-break on node id for
        // determinism across runs.
        other.key.total_cmp(&self.key).then_with(|| other.node.0.cmp(&self.node.0))
    }
}

/// Reusable search space: distance/parent labels validated by an epoch
/// stamp, so starting a new search is O(1).
///
/// After [`Searcher::run`] the labels of the *last* search remain readable
/// through [`Searcher::distance`] / [`Searcher::path_to`] until the next
/// search starts.
#[derive(Debug, Default)]
pub struct Searcher {
    dist: Vec<f64>,
    parent: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<HeapEntry>,
}

impl Searcher {
    /// Create an empty searcher; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.parent.resize(n, NIL);
            self.stamp.resize(n, 0);
        }
        self.heap.clear();
        // Epoch 0 is the "never touched" stamp; skip it on wrap-around.
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    #[inline]
    fn is_current(&self, n: NodeId) -> bool {
        self.stamp[n.index()] == self.epoch
    }

    #[inline]
    fn label(&mut self, n: NodeId, d: f64, parent: u32) {
        let i = n.index();
        self.dist[i] = d;
        self.parent[i] = parent;
        self.stamp[i] = self.epoch;
    }

    /// Run Dijkstra from `source` until `goal` is met. Returns per-run
    /// counters; query labels afterwards via [`Searcher::distance`] and
    /// [`Searcher::path_to`].
    pub fn run<G: GraphView>(&mut self, g: &G, source: NodeId, goal: &Goal) -> SearchStats {
        let n = g.num_nodes();
        assert!(source.index() < n, "source out of range");
        self.begin(n);
        let mut stats = SearchStats::one_run();

        // `settled` marker: parent stays NIL for the source, so track
        // settledness via a sentinel on dist updates — we reuse the stamp
        // array by storing *labelled* state and a separate settled bitmap
        // would cost O(n); instead mark settled by negating the stamp trick:
        // a node is settled once popped fresh. Lazy deletion guarantees the
        // first fresh pop carries the final distance.
        let mut remaining: Vec<NodeId> = match goal {
            Goal::Set(set) => {
                let mut v = set.clone();
                v.sort_unstable();
                v.dedup();
                v
            }
            _ => Vec::new(),
        };
        let mut remaining_count = remaining.len();

        self.label(source, 0.0, NIL);
        self.heap.push(HeapEntry { key: 0.0, node: source });
        stats.heap_pushes += 1;

        let mut settled_flag = vec![0u64; n.div_ceil(64)]; // settled-node bitmap
        let is_settled = |flags: &mut Vec<u64>, node: NodeId| -> bool {
            let (w, b) = (node.index() / 64, node.index() % 64);
            let hit = flags[w] >> b & 1 == 1;
            flags[w] |= 1 << b;
            hit
        };

        while let Some(HeapEntry { key, node }) = self.heap.pop() {
            stats.heap_pops += 1;
            // Stale entry: a shorter label was already settled.
            if key > self.dist[node.index()] || is_settled(&mut settled_flag, node) {
                continue;
            }
            stats.settled += 1;

            match goal {
                Goal::Single(t) if *t == node => return stats,
                Goal::Set(_) => {
                    if let Ok(pos) = remaining.binary_search(&node) {
                        remaining.remove(pos);
                        remaining_count -= 1;
                        if remaining_count == 0 {
                            return stats;
                        }
                    }
                }
                _ => {}
            }

            let d_node = self.dist[node.index()];
            let epoch = self.epoch;
            // Split borrows: relax arcs, pushing improved labels.
            let (dist, parent, stamp, heap) =
                (&mut self.dist, &mut self.parent, &mut self.stamp, &mut self.heap);
            g.for_each_arc(node, &mut |to, w| {
                stats.relaxed += 1;
                let cand = d_node + w;
                let i = to.index();
                let fresh = stamp[i] != epoch;
                if fresh || cand < dist[i] {
                    dist[i] = cand;
                    parent[i] = node.0;
                    stamp[i] = epoch;
                    heap.push(HeapEntry { key: cand, node: to });
                    stats.heap_pushes += 1;
                }
            });
        }
        stats
    }

    /// Final distance to `n` from the last run's source, if `n` was
    /// labelled. Only exact (settled) for nodes the run settled before
    /// terminating; for an early-terminated run, nodes beyond the goal may
    /// carry tentative labels.
    pub fn distance(&self, n: NodeId) -> Option<f64> {
        if n.index() < self.stamp.len() && self.is_current(n) {
            Some(self.dist[n.index()])
        } else {
            None
        }
    }

    /// Reconstruct the path from the last run's source to `t`.
    pub fn path_to(&self, t: NodeId) -> Option<Path> {
        if t.index() >= self.stamp.len() || !self.is_current(t) {
            return None;
        }
        let mut nodes = vec![t];
        let mut cur = t;
        while self.parent[cur.index()] != NIL {
            cur = NodeId(self.parent[cur.index()]);
            nodes.push(cur);
            debug_assert!(nodes.len() <= self.stamp.len(), "parent cycle");
        }
        nodes.reverse();
        Some(Path::new(nodes, self.dist[t.index()]))
    }
}

/// One-shot shortest path `P(s,t)`; `None` if `t` is unreachable.
pub fn shortest_path<G: GraphView>(g: &G, s: NodeId, t: NodeId) -> Option<Path> {
    let mut searcher = Searcher::new();
    searcher.run(g, s, &Goal::Single(t));
    searcher.path_to(t)
}

/// One-shot shortest-path distance `‖s,t‖`.
pub fn shortest_distance<G: GraphView>(g: &G, s: NodeId, t: NodeId) -> Option<f64> {
    let mut searcher = Searcher::new();
    searcher.run(g, s, &Goal::Single(t));
    searcher.distance(t)
}

/// One-shot single-source multi-destination search (§III-B): paths from `s`
/// to each target, in target order, plus the run's counters.
pub fn multi_destination<G: GraphView>(
    g: &G,
    s: NodeId,
    targets: &[NodeId],
) -> (Vec<Option<Path>>, SearchStats) {
    let mut searcher = Searcher::new();
    let stats = searcher.run(g, s, &Goal::Set(targets.to_vec()));
    let paths = targets.iter().map(|&t| searcher.path_to(t)).collect();
    (paths, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::generators::{GridConfig, grid_network};
    use roadnet::{GraphBuilder, Point};

    fn diamond() -> roadnet::RoadNetwork {
        // 0 —1→ 1 —1→ 3 ; 0 —3→ 2 —0.5→ 3 : best 0→1→3 = 2.0
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i as f64, 0.0)).unwrap();
        }
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 3.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn finds_shortest_path_in_diamond() {
        let g = diamond();
        let p = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(1), NodeId(3)]);
        assert!((p.distance() - 2.0).abs() < 1e-12);
        assert!(p.verify(&g, 1e-9));
    }

    #[test]
    fn source_equals_target() {
        let g = diamond();
        let p = shortest_path(&g, NodeId(2), NodeId(2)).unwrap();
        assert!(p.is_trivial());
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0)).unwrap();
        b.add_node(Point::new(1.0, 0.0)).unwrap();
        b.add_node(Point::new(2.0, 0.0)).unwrap();
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let g = b.build().unwrap();
        assert!(shortest_path(&g, NodeId(0), NodeId(2)).is_none());
        assert!(shortest_distance(&g, NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn early_termination_settles_fewer_nodes_than_full_tree() {
        let g = grid_network(&GridConfig { width: 24, height: 24, seed: 1, ..Default::default() })
            .unwrap();
        let mut s = Searcher::new();
        let full = s.run(&g, NodeId(0), &Goal::AllNodes);
        let single = s.run(&g, NodeId(0), &Goal::Single(NodeId(25))); // a nearby node
        assert!(single.settled < full.settled / 4, "{} vs {}", single.settled, full.settled);
        assert_eq!(full.settled, 24 * 24, "full tree settles every node");
    }

    #[test]
    fn multi_destination_matches_individual_searches() {
        let g = grid_network(&GridConfig { width: 12, height: 12, seed: 3, ..Default::default() })
            .unwrap();
        let s = NodeId(5);
        let targets = [NodeId(100), NodeId(37), NodeId(143), NodeId(9)];
        let (paths, stats) = multi_destination(&g, s, &targets);
        for (i, &t) in targets.iter().enumerate() {
            let solo = shortest_path(&g, s, t).unwrap();
            let multi = paths[i].as_ref().unwrap();
            assert!((solo.distance() - multi.distance()).abs() < 1e-9, "target {t}");
            assert!(multi.verify(&g, 1e-9));
        }
        // Multi-destination cost ≤ sum of individual costs.
        let individual: u64 = targets
            .iter()
            .map(|&t| {
                let mut se = Searcher::new();
                se.run(&g, s, &Goal::Single(t)).settled
            })
            .sum();
        assert!(stats.settled <= individual);
    }

    #[test]
    fn multi_destination_cost_tracks_farthest_target_only() {
        // Lemma 1's observation: adding near targets to a far one is ~free.
        let g = grid_network(&GridConfig { width: 30, height: 30, seed: 7, ..Default::default() })
            .unwrap();
        let s = NodeId(0);
        let far = NodeId(30 * 30 - 1);
        let mut searcher = Searcher::new();
        let far_only = searcher.run(&g, s, &Goal::Set(vec![far]));
        let with_near =
            searcher.run(&g, s, &Goal::Set(vec![far, NodeId(31), NodeId(62), NodeId(100)]));
        let ratio = with_near.settled as f64 / far_only.settled as f64;
        assert!(ratio <= 1.05, "near targets inflated cost by {ratio}");
    }

    #[test]
    fn duplicate_targets_are_handled() {
        let g = diamond();
        let (paths, _) = multi_destination(&g, NodeId(0), &[NodeId(3), NodeId(3)]);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0], paths[1]);
    }

    #[test]
    fn searcher_reuse_resets_labels() {
        let g = diamond();
        let mut s = Searcher::new();
        s.run(&g, NodeId(0), &Goal::AllNodes);
        assert!(s.distance(NodeId(3)).is_some());
        s.run(&g, NodeId(3), &Goal::Single(NodeId(2)));
        // Distance now from node 3, not node 0.
        assert!((s.distance(NodeId(2)).unwrap() - 0.5).abs() < 1e-12);
        // Node 1 may or may not be labelled; if labelled, from the new source.
        if let Some(d) = s.distance(NodeId(1)) {
            assert!(d >= 0.5);
        }
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two equal-cost paths: parents must be chosen deterministically.
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i as f64, 0.0)).unwrap();
        }
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        let g = b.build().unwrap();
        let p1 = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        let p2 = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p1, p2);
        assert!((p1.distance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stats_are_plausible() {
        let g = grid_network(&GridConfig { width: 10, height: 10, seed: 0, ..Default::default() })
            .unwrap();
        let mut s = Searcher::new();
        let st = s.run(&g, NodeId(0), &Goal::AllNodes);
        assert_eq!(st.runs, 1);
        assert_eq!(st.settled, 100);
        assert!(st.relaxed >= st.settled);
        assert!(st.heap_pops <= st.heap_pushes);
    }
}
