//! Bidirectional Dijkstra.
//!
//! Two spanning trees grow from `s` and `t` simultaneously; the search stops
//! when the sum of the two frontier radii reaches the best connecting
//! distance found. On road networks this roughly halves the searched area
//! (two circles of radius `d/2` instead of one of radius `d`), which makes
//! it the strongest *single-pair* baseline to compare the multi-destination
//! sharing of obfuscated query processing against.
//!
//! The implementation assumes a **symmetric** graph view (undirected
//! network), which holds for every generator in `roadnet`; the backward
//! search then uses the same adjacency as the forward one.

use crate::path::Path;
use crate::stats::SearchStats;
use roadnet::{GraphView, NodeId};
use std::collections::BinaryHeap;

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct HeapEntry {
    d: f64,
    node: NodeId,
}
impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.d == other.d && self.node == other.node
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.d.total_cmp(&self.d).then_with(|| other.node.0.cmp(&self.node.0))
    }
}

struct Side {
    dist: Vec<f64>,
    parent: Vec<u32>,
    settled: Vec<bool>,
    heap: BinaryHeap<HeapEntry>,
}

impl Side {
    fn new(n: usize, start: NodeId) -> Self {
        let mut s = Side {
            dist: vec![f64::INFINITY; n],
            parent: vec![NIL; n],
            settled: vec![false; n],
            heap: BinaryHeap::new(),
        };
        s.dist[start.index()] = 0.0;
        s.heap.push(HeapEntry { d: 0.0, node: start });
        s
    }

    fn min_key(&self) -> f64 {
        self.heap.peek().map_or(f64::INFINITY, |e| e.d)
    }
}

/// Bidirectional Dijkstra from `s` to `t` on a symmetric graph.
///
/// Returns the shortest path (or `None` if disconnected) and combined
/// counters for both directions.
pub fn bidirectional<G: GraphView>(g: &G, s: NodeId, t: NodeId) -> (Option<Path>, SearchStats) {
    let n = g.num_nodes();
    assert!(s.index() < n && t.index() < n, "endpoint out of range");
    assert!(
        g.is_symmetric(),
        "bidirectional search uses forward arcs for the backward tree and is \
         only exact on symmetric (undirected) graph views"
    );
    let mut stats = SearchStats::one_run();
    stats.heap_pushes += 2;

    if s == t {
        stats.settled = 1;
        return (Some(Path::trivial(s)), stats);
    }

    let mut fwd = Side::new(n, s);
    let mut bwd = Side::new(n, t);
    let mut best = f64::INFINITY;
    let mut meet: Option<NodeId> = None;

    loop {
        // Standard stopping criterion: no better connection can appear once
        // the sum of the minimum keys reaches the best found so far.
        let (kf, kb) = (fwd.min_key(), bwd.min_key());
        if kf + kb >= best || (kf.is_infinite() && kb.is_infinite()) {
            break;
        }
        // Expand the side with the smaller frontier radius (balanced growth).
        let forward = kf <= kb;
        let (this, other) = if forward { (&mut fwd, &mut bwd) } else { (&mut bwd, &mut fwd) };

        let Some(HeapEntry { d, node }) = this.heap.pop() else { break };
        stats.heap_pops += 1;
        if this.settled[node.index()] || d > this.dist[node.index()] {
            continue;
        }
        this.settled[node.index()] = true;
        stats.settled += 1;

        let d_node = this.dist[node.index()];
        let this_dist = &mut this.dist;
        let this_parent = &mut this.parent;
        let this_settled = &this.settled;
        let this_heap = &mut this.heap;
        let other_dist = &other.dist;
        g.for_each_arc(node, &mut |to, w| {
            stats.relaxed += 1;
            let cand = d_node + w;
            if cand < this_dist[to.index()] && !this_settled[to.index()] {
                this_dist[to.index()] = cand;
                this_parent[to.index()] = node.0;
                this_heap.push(HeapEntry { d: cand, node: to });
                stats.heap_pushes += 1;
            }
            // A connection exists whenever the other side has labelled `to`.
            let through = cand + other_dist[to.index()];
            if through < best {
                best = through;
                meet = Some(to);
            }
        });
        // The settled node itself may close a connection.
        let through = d_node + other.dist[node.index()];
        if through < best {
            best = through;
            meet = Some(node);
        }
    }

    let Some(m) = meet else { return (None, stats) };

    // Stitch: s → … → m from the forward tree, then m → … → t reversed from
    // the backward tree.
    let mut nodes = Vec::new();
    let mut cur = m;
    loop {
        nodes.push(cur);
        let p = fwd.parent[cur.index()];
        if p == NIL {
            break;
        }
        cur = NodeId(p);
    }
    nodes.reverse();
    let mut cur = m;
    loop {
        let p = bwd.parent[cur.index()];
        if p == NIL {
            break;
        }
        cur = NodeId(p);
        nodes.push(cur);
    }
    (Some(Path::new(nodes, best)), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::shortest_path;
    use roadnet::generators::{
        GeometricConfig, GridConfig, NetworkClass, grid_network, random_geometric,
    };
    use roadnet::{GraphBuilder, Point};

    #[test]
    fn matches_dijkstra_on_grid() {
        let g = grid_network(&GridConfig { width: 14, height: 14, seed: 5, ..Default::default() })
            .unwrap();
        for (s, t) in [(0u32, 195u32), (13, 182), (90, 91), (100, 100)] {
            let (bp, _) = bidirectional(&g, NodeId(s), NodeId(t));
            let dp = shortest_path(&g, NodeId(s), NodeId(t));
            match (bp, dp) {
                (Some(b), Some(d)) => {
                    assert!((b.distance() - d.distance()).abs() < 1e-9, "({s},{t})");
                    assert!(b.verify(&g, 1e-9), "({s},{t}) path invalid: {b}");
                    assert_eq!(b.source(), NodeId(s));
                    assert_eq!(b.destination(), NodeId(t));
                }
                (None, None) => {}
                other => panic!("mismatch for ({s},{t}): {other:?}"),
            }
        }
    }

    #[test]
    fn matches_dijkstra_on_all_network_classes() {
        for class in NetworkClass::ALL {
            let g = class.generate(600, 13).unwrap();
            let n = g.num_nodes() as u32;
            for (s, t) in [(0, n - 1), (n / 3, 2 * n / 3), (1, n / 2)] {
                let (bp, _) = bidirectional(&g, NodeId(s), NodeId(t));
                let dp = shortest_path(&g, NodeId(s), NodeId(t)).unwrap();
                let bp = bp.unwrap();
                assert!(
                    (bp.distance() - dp.distance()).abs() < 1e-9,
                    "{} ({s},{t}): {} vs {}",
                    class.name(),
                    bp.distance(),
                    dp.distance()
                );
            }
        }
    }

    #[test]
    fn settles_fewer_than_unidirectional_on_long_queries() {
        let g =
            random_geometric(&GeometricConfig { num_nodes: 3000, seed: 2, ..Default::default() })
                .unwrap();
        let (s, t) = (NodeId(0), NodeId(2999));
        let (_, b_stats) = bidirectional(&g, s, t);
        let mut searcher = crate::dijkstra::Searcher::new();
        let d_stats = searcher.run(&g, s, &crate::dijkstra::Goal::Single(t));
        assert!(
            b_stats.settled < d_stats.settled,
            "bidi {} vs dijkstra {}",
            b_stats.settled,
            d_stats.settled
        );
    }

    #[test]
    fn disconnected_pair_returns_none() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i as f64, 0.0)).unwrap();
        }
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        let g = b.build().unwrap();
        let (p, _) = bidirectional(&g, NodeId(0), NodeId(3));
        assert!(p.is_none());
    }

    #[test]
    fn adjacent_nodes() {
        let g =
            grid_network(&GridConfig { width: 4, height: 4, knockout: 0.0, ..Default::default() })
                .unwrap();
        let (p, _) = bidirectional(&g, NodeId(0), NodeId(1));
        let p = p.unwrap();
        let d = shortest_path(&g, NodeId(0), NodeId(1)).unwrap();
        assert!((p.distance() - d.distance()).abs() < 1e-9);
    }
}
