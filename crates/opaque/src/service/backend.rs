//! Pluggable directions-search backends.
//!
//! The paper's pipeline (Figure 5) names one concrete server; a production
//! deployment serves the same obfuscated-query protocol from whatever is
//! behind the wire — a single in-memory server, a paged-storage server, or
//! a fleet of shards. [`DirectionsBackend`] is that protocol boundary: the
//! exact operation surface the obfuscator needs from "the server side",
//! and nothing more. [`crate::service::OpaqueService`] is generic over it,
//! so later transports (async, remote) only need a new impl.

use crate::error::{OpaqueError, Result};
use crate::query::{ObfuscatedPathQuery, PathQuery};
use crate::server::{DirectionsServer, ServerStats};
use crate::service::parallel::{self, ExecutionPolicy};
use crate::service::partition::Partition;
use pathsearch::{MsmdResult, Path};
use roadnet::GraphView;

/// Anything that can answer directions queries for the OPAQUE pipeline.
///
/// Implementations must answer **honestly** (return a correct shortest
/// path for every connected pair they report) but are assumed
/// semi-trusted: they observe every query they serve, which is why they
/// only ever receive obfuscated queries from the service.
pub trait DirectionsBackend {
    /// Answer an obfuscated path query: candidate paths for all
    /// `|S| × |T|` pairs (`None` entries for disconnected pairs).
    fn process(&mut self, query: &ObfuscatedPathQuery) -> MsmdResult;

    /// Answer a whole batch of obfuscated queries, one result per query
    /// **in query order**.
    ///
    /// The default implementation evaluates sequentially on the calling
    /// thread regardless of `execution` — a single backend owns a single
    /// search arena, so there is nothing to fan out over. Multi-shard
    /// backends override this: [`ShardedBackend`] dispatches a
    /// [`ExecutionPolicy::WorkerPool`] batch across its shard fleet with
    /// one pinned worker per shard (see [`crate::service::parallel`]),
    /// returning results that are — by the determinism harness's proof
    /// obligation — identical to this sequential reference.
    fn process_many(
        &mut self,
        queries: &[ObfuscatedPathQuery],
        execution: ExecutionPolicy,
    ) -> Vec<MsmdResult> {
        let _ = execution;
        queries.iter().map(|q| self.process(q)).collect()
    }

    /// Answer a plain, unprotected path query.
    fn process_plain(&mut self, query: &PathQuery) -> Option<Path>;

    /// Cumulative load counters across every query served.
    fn stats(&self) -> ServerStats;

    /// Zero the load counters.
    fn reset_stats(&mut self);

    /// Human-readable description for logs and reports.
    fn label(&self) -> String {
        "directions-backend".to_string()
    }
}

impl<G: GraphView> DirectionsBackend for DirectionsServer<G> {
    fn process(&mut self, query: &ObfuscatedPathQuery) -> MsmdResult {
        DirectionsServer::process(self, query)
    }

    fn process_plain(&mut self, query: &PathQuery) -> Option<Path> {
        DirectionsServer::process_plain(self, query)
    }

    fn stats(&self) -> ServerStats {
        DirectionsServer::stats(self)
    }

    fn reset_stats(&mut self) {
        DirectionsServer::reset_stats(self)
    }

    fn label(&self) -> String {
        format!("directions-server({})", self.policy().name())
    }
}

impl<B: DirectionsBackend + ?Sized> DirectionsBackend for Box<B> {
    fn process(&mut self, query: &ObfuscatedPathQuery) -> MsmdResult {
        (**self).process(query)
    }

    fn process_many(
        &mut self,
        queries: &[ObfuscatedPathQuery],
        execution: ExecutionPolicy,
    ) -> Vec<MsmdResult> {
        (**self).process_many(queries, execution)
    }

    fn process_plain(&mut self, query: &PathQuery) -> Option<Path> {
        (**self).process_plain(query)
    }

    fn stats(&self) -> ServerStats {
        (**self).stats()
    }

    fn reset_stats(&mut self) {
        (**self).reset_stats()
    }

    fn label(&self) -> String {
        (**self).label()
    }
}

/// Fan-out over several backends: round-robin or region-owned placement
/// one query at a time, or a pinned-worker pool for whole batches.
///
/// Every shard holds (a view of) the whole map, so any shard can answer
/// any query — queries are independent, and each obfuscated query is
/// already a self-contained unit of work. Placement is pluggable:
///
/// * **Round-robin** ([`ShardedBackend::new`]): single queries
///   ([`DirectionsBackend::process`]) balance load by simple rotation,
///   and [`ExecutionPolicy::WorkerPool`] batches are fanned out with one
///   worker per shard pulling units from a shared injector queue.
/// * **Region-owned** ([`ShardedBackend::with_partition`]): a
///   [`Partition`] routes every query to the shard owning its
///   obfuscation region (halo fallback → any-owner fallback), so each
///   shard's tree cache sees spatially clustered roots. Worker-pool
///   batches pull from **per-shard queues** instead of the global
///   cursor — see [`parallel`].
///
/// Either way the fleet's backend impl requires `B: Send`, and cumulative
/// [`ServerStats`] aggregate over all shards via the commutative
/// [`ServerStats::merge`], so reports describe fleet-wide cost regardless
/// of which shard served which unit — placement is report-invisible
/// (`tests/partition_equivalence.rs`).
pub struct ShardedBackend<B> {
    shards: Vec<B>,
    cursor: usize,
    router: Option<Partition>,
}

impl<B: DirectionsBackend> ShardedBackend<B> {
    /// Build from a non-empty shard fleet.
    ///
    /// # Errors
    /// [`OpaqueError::InvalidConfig`] when `shards` is empty.
    pub fn new(shards: Vec<B>) -> Result<Self> {
        if shards.is_empty() {
            return Err(OpaqueError::InvalidConfig {
                reason: "sharded backend needs at least one shard".to_string(),
            });
        }
        Ok(ShardedBackend { shards, cursor: 0, router: None })
    }

    /// Build a region-owned fleet: `partition` routes every query to the
    /// shard owning its obfuscation region instead of rotating a cursor.
    ///
    /// # Errors
    /// [`OpaqueError::InvalidConfig`] when the fleet is empty or the
    /// partition was built for a different shard count.
    pub fn with_partition(shards: Vec<B>, partition: Partition) -> Result<Self> {
        if partition.shards() != shards.len() {
            return Err(OpaqueError::InvalidConfig {
                reason: format!(
                    "partition has {} regions for a fleet of {} shards",
                    partition.shards(),
                    shards.len()
                ),
            });
        }
        let mut backend = Self::new(shards)?;
        backend.router = Some(partition);
        Ok(backend)
    }

    /// The region partition routing this fleet, if any (`None` means
    /// round-robin placement).
    pub fn partition(&self) -> Option<&Partition> {
        self.router.as_ref()
    }

    /// Number of shards in the fleet.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, for per-shard inspection (load skew, I/O counters, …).
    pub fn shards(&self) -> &[B] {
        &self.shards
    }

    /// Per-shard pair counts — a quick balance check for experiments.
    pub fn load_per_shard(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.stats().pairs_evaluated).collect()
    }
}

/// Live-map maintenance for the standard fleet shape — shards sharing one
/// map through an `Arc` (what [`crate::ServiceBuilder`] assembles). Both
/// entry points keep the one-map-per-fleet memory property: the map is
/// cloned **once**, mutated, and the fresh `Arc` is distributed to every
/// shard.
impl ShardedBackend<DirectionsServer<std::sync::Arc<roadnet::RoadNetwork>>> {
    /// Apply live-traffic weight updates fleet-wide. Each shard installs
    /// the reweighted map and surgically evicts only the cached trees
    /// whose recorded sweep touched a changed edge
    /// ([`DirectionsServer::apply_weight_update`]) — region-owned shards
    /// whose cached sweeps stay clear of the congestion keep their whole
    /// cache. Returns the edges whose weight actually changed. The region
    /// partition (if any) is untouched: it is built from hop distances,
    /// which weight updates cannot move.
    ///
    /// # Errors
    /// Propagates [`roadnet::RoadNetError`] from
    /// [`roadnet::RoadNetwork::update_weights`]; no shard is touched on
    /// error.
    pub fn update_weights(
        &mut self,
        updates: &[(roadnet::EdgeId, f64)],
    ) -> std::result::Result<Vec<roadnet::EdgeId>, roadnet::RoadNetError> {
        let mut map = (**self.shards[0].graph()).clone();
        let changed = map.update_weights(updates)?;
        let endpoints: Vec<(roadnet::NodeId, roadnet::NodeId)> = changed
            .iter()
            .map(|&e| {
                let edge = map.edge(e);
                (edge.a, edge.b)
            })
            .collect();
        let shared = std::sync::Arc::new(map);
        for shard in &mut self.shards {
            shard.apply_weight_update(std::sync::Arc::clone(&shared), &endpoints);
        }
        Ok(changed)
    }

    /// Replace the served map fleet-wide — the topology-change path. Every
    /// shard bumps its epoch and drops its whole cache
    /// ([`DirectionsServer::swap_map`]); use
    /// [`ShardedBackend::update_weights`] for traffic.
    pub fn swap_map(&mut self, map: roadnet::RoadNetwork) {
        let shared = std::sync::Arc::new(map);
        for shard in &mut self.shards {
            shard.swap_map(std::sync::Arc::clone(&shared));
        }
    }
}

impl<B: DirectionsBackend + Send> DirectionsBackend for ShardedBackend<B> {
    fn process(&mut self, query: &ObfuscatedPathQuery) -> MsmdResult {
        let picked = match &self.router {
            Some(partition) => partition.route(query),
            None => {
                let picked = self.cursor;
                self.cursor = (self.cursor + 1) % self.shards.len();
                picked
            }
        };
        self.shards[picked].process(query)
    }

    fn process_many(
        &mut self,
        queries: &[ObfuscatedPathQuery],
        execution: ExecutionPolicy,
    ) -> Vec<MsmdResult> {
        match execution {
            // Sequential batches go through the routed/rotating
            // single-query path, preserving the historical per-shard load
            // pattern.
            ExecutionPolicy::Sequential => {
                queries.iter().map(|q| DirectionsBackend::process(self, q)).collect()
            }
            ExecutionPolicy::WorkerPool { threads } => match &self.router {
                Some(partition) => {
                    let assignment: Vec<usize> =
                        queries.iter().map(|q| partition.route(q)).collect();
                    parallel::process_routed_on_shards(
                        &mut self.shards,
                        queries,
                        &assignment,
                        threads,
                    )
                }
                None => parallel::process_on_shards(&mut self.shards, queries, threads),
            },
        }
    }

    fn process_plain(&mut self, query: &PathQuery) -> Option<Path> {
        let picked = match &self.router {
            // Plain queries grow their tree from the source: route by the
            // source side so repeats of a popular origin hit one cache.
            Some(partition) => partition.route_endpoints(&[query.source], &[query.destination]).0,
            None => {
                let picked = self.cursor;
                self.cursor = (self.cursor + 1) % self.shards.len();
                picked
            }
        };
        self.shards[picked].process_plain(query)
    }

    fn stats(&self) -> ServerStats {
        let mut total = ServerStats::default();
        for shard in &self.shards {
            total.merge(&shard.stats());
        }
        total
    }

    fn reset_stats(&mut self) {
        for shard in &mut self.shards {
            shard.reset_stats();
        }
    }

    fn label(&self) -> String {
        match &self.router {
            Some(p) => format!("sharded({}x, region-owned halo={})", self.shards.len(), p.halo()),
            None => format!("sharded({}x)", self.shards.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathsearch::SharingPolicy;
    use roadnet::NodeId;
    use roadnet::generators::{GridConfig, grid_network};

    fn server() -> DirectionsServer<roadnet::RoadNetwork> {
        let g = grid_network(&GridConfig { width: 10, height: 10, seed: 3, ..Default::default() })
            .unwrap();
        DirectionsServer::new(g, SharingPolicy::PerSource)
    }

    #[test]
    fn sharded_round_robin_rotates_and_aggregates() {
        let mut sharded = ShardedBackend::new(vec![server(), server(), server()]).unwrap();
        let q = ObfuscatedPathQuery::new(vec![NodeId(0)], vec![NodeId(99)]);
        for _ in 0..6 {
            let r = DirectionsBackend::process(&mut sharded, &q);
            assert_eq!(r.num_paths(), 1);
        }
        // 6 queries over 3 shards: exactly 2 each.
        assert_eq!(sharded.load_per_shard(), vec![2, 2, 2]);
        assert_eq!(sharded.stats().obfuscated_queries, 6);
        assert_eq!(sharded.stats().pairs_evaluated, 6);
        sharded.reset_stats();
        assert_eq!(sharded.stats(), ServerStats::default());
    }

    #[test]
    fn process_many_worker_pool_matches_sequential_round_robin() {
        let qs: Vec<ObfuscatedPathQuery> = (0..10)
            .map(|i| {
                ObfuscatedPathQuery::new(
                    vec![NodeId(i), NodeId(i + 20)],
                    vec![NodeId(99 - i), NodeId(50 + i)],
                )
            })
            .collect();
        let mut seq = ShardedBackend::new(vec![server(), server(), server()]).unwrap();
        let mut par = ShardedBackend::new(vec![server(), server(), server()]).unwrap();
        let a = seq.process_many(&qs, ExecutionPolicy::Sequential);
        let b = par.process_many(&qs, ExecutionPolicy::WorkerPool { threads: 3 });
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.paths, y.paths, "unit {i}");
            assert_eq!(x.stats, y.stats, "unit {i}");
        }
        // Per-shard distribution may differ (rotation vs work stealing),
        // but the fleet-merged counters are execution-invariant.
        assert_eq!(seq.stats(), par.stats());
    }

    #[test]
    fn empty_fleet_is_rejected() {
        let empty: Vec<DirectionsServer<roadnet::RoadNetwork>> = vec![];
        assert!(matches!(ShardedBackend::new(empty), Err(OpaqueError::InvalidConfig { .. })));
    }

    #[test]
    fn fleet_weight_update_shares_one_map_and_keeps_partition() {
        use crate::service::cache::CachePolicy;
        use std::sync::Arc;

        let g = grid_network(&GridConfig { width: 10, height: 10, seed: 3, ..Default::default() })
            .unwrap();
        let shared = Arc::new(g.clone());
        let shards: Vec<_> = (0..3)
            .map(|_| {
                DirectionsServer::new(Arc::clone(&shared), SharingPolicy::PerSource)
                    .with_tree_cache(CachePolicy::Lru { trees: 4 })
            })
            .collect();
        let partition = Partition::build(&g, 3, 1).unwrap();
        let before_regions = partition.owners().to_vec();
        let mut fleet = ShardedBackend::with_partition(shards, partition).unwrap();

        let changed = fleet.update_weights(&[(roadnet::EdgeId(0), 123.0)]).unwrap();
        assert_eq!(changed, vec![roadnet::EdgeId(0)]);
        // One fresh map, shared by every shard — not three copies.
        let first = fleet.shards()[0].graph();
        assert_eq!(first.edge(roadnet::EdgeId(0)).weight, 123.0);
        for shard in fleet.shards() {
            assert!(Arc::ptr_eq(first, shard.graph()), "fleet must share one Arc");
            assert_eq!(shard.map_epoch(), 0, "weight updates keep the epoch");
        }
        // The hop-distance partition is weight-independent and untouched.
        assert_eq!(fleet.partition().unwrap().owners(), &before_regions[..]);

        // A bad batch leaves every shard on the old map.
        assert!(fleet.update_weights(&[(roadnet::EdgeId(0), f64::NAN)]).is_err());
        assert_eq!(fleet.shards()[0].graph().edge(roadnet::EdgeId(0)).weight, 123.0);

        // swap_map is the epoch-bumping topology path.
        fleet.swap_map(g);
        for shard in fleet.shards() {
            assert_eq!(shard.map_epoch(), 1);
            assert!(shard.tree_cache().unwrap().is_empty());
        }
    }

    #[test]
    fn boxed_backends_dispatch_dynamically() {
        let mut backend: Box<dyn DirectionsBackend> = Box::new(server());
        let p = backend.process_plain(&PathQuery::new(NodeId(0), NodeId(99))).unwrap();
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(backend.stats().plain_queries, 1);
        assert!(backend.label().contains("directions-server"));
    }
}
