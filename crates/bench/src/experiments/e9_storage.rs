//! E9 — CCAM storage ablation (§III-B, citing Shekhar & Liu \[9\]).
//!
//! The paper's cost analysis assumes "nodes and their edges are clustered
//! and stored on disk"; the I/O cost of a search is then proportional to
//! the pages its spanning tree touches. This experiment runs the same
//! obfuscated-query workload over four page placements (CCAM connectivity
//! clustering, global BFS order, node order, random) and a sweep of buffer
//! sizes, reporting page faults per query — the I/O half of Lemma 1.

use crate::setup::{Scale, network_with_index};
use crate::table::{ExperimentTable, f3};
use opaque::{ClientId, ClientRequest, FakeSelection, Obfuscator, PathQuery, ProtectionSettings};
use pathsearch::{SharingPolicy, msmd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::generators::NetworkClass;
use roadnet::{NodeId, PageLayout, PagePlacement, PagedGraph};

/// Run E9.
pub fn run(scale: &Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E9",
        "storage ablation: page placement × buffer size",
        "§III-B storage assumption (CCAM [9])",
        &["placement", "colocation", "buffer pages", "faults/query", "hit ratio"],
    );
    let (g, _) = network_with_index(NetworkClass::Grid, scale);
    let n = g.num_nodes() as u32;
    let mut rng = StdRng::seed_from_u64(0xE9);
    let mut ob = Obfuscator::new(g.clone(), FakeSelection::default_ring(), 0xE9);

    // One fixed workload of obfuscated queries, reused for every storage
    // configuration.
    let units: Vec<_> = (0..scale.queries)
        .map(|i| {
            let (s, d) = loop {
                let s = NodeId(rng.gen_range(0..n));
                let d = NodeId(rng.gen_range(0..n));
                if s != d {
                    break (s, d);
                }
            };
            let req = ClientRequest::new(
                ClientId(i as u32),
                PathQuery::new(s, d),
                ProtectionSettings::new(3, 3).expect("positive"),
            );
            ob.obfuscate_independent(&req).expect("map large enough")
        })
        .collect();

    let placements = [
        PagePlacement::Connectivity,
        PagePlacement::BfsOrder,
        PagePlacement::NodeOrder,
        PagePlacement::Random { seed: 0xE9 },
    ];
    // Buffer sizes relative to the file size, so contention exists at every
    // experiment scale: a starved buffer, a half-file buffer, and one that
    // holds everything.
    let num_pages =
        PageLayout::build(&g, PagePlacement::Connectivity, PageLayout::DEFAULT_SLOTS_PER_PAGE)
            .num_pages();
    let buffers = [(num_pages / 16).max(2), (num_pages / 2).max(4), num_pages * 2];

    for placement in placements {
        let layout = PageLayout::build(&g, placement, PageLayout::DEFAULT_SLOTS_PER_PAGE);
        let colocation = layout.colocation_ratio(&g);
        for &buffer in &buffers {
            let paged = PagedGraph::new(&g, layout.clone(), buffer);
            for unit in &units {
                let _ = msmd(
                    &paged,
                    unit.query.sources(),
                    unit.query.targets(),
                    SharingPolicy::PerSource,
                );
            }
            let io = paged.io_stats();
            t.row(vec![
                placement.name().into(),
                f3(colocation),
                buffer.to_string(),
                f3(io.faults as f64 / units.len() as f64),
                f3(io.hit_ratio()),
            ]);
        }
    }
    t.note("CCAM's connectivity clustering cuts faults/query versus random placement at every buffer size");
    t.note("larger buffers narrow the gap (everything fits), matching the CCAM paper's shape");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_ccam_beats_random_placement_under_contention() {
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), 12);
        // First row of each placement block is the starved buffer — the
        // regime where placement quality matters.
        let faults = |p: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == p).unwrap_or_else(|| panic!("row {p}"))[3]
                .parse()
                .unwrap()
        };
        assert!(
            faults("ccam") < faults("random"),
            "starved buffer: ccam {} vs random {}",
            faults("ccam"),
            faults("random")
        );
    }

    #[test]
    fn e9_bigger_buffers_fault_less() {
        let t = run(&Scale::quick());
        for placement in ["ccam", "bfs-order", "node-order", "random"] {
            let rows: Vec<f64> = t
                .rows
                .iter()
                .filter(|r| r[0] == placement)
                .map(|r| r[3].parse().unwrap())
                .collect();
            for w in rows.windows(2) {
                assert!(w[1] <= w[0] + 1e-9, "{placement}: faults should fall with buffer size");
            }
        }
    }
}
