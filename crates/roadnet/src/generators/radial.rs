//! Radial ("old city") network generator: concentric rings connected by
//! spokes around a central node.
//!
//! This family stresses search algorithms differently from grids: paths
//! between points on opposite sides of the city are funnelled through inner
//! rings or the centre, so spanning-tree search areas (the quantity in
//! Lemma 1's cost bound) grow faster with distance than on a grid.

use crate::error::Result;
use crate::geo::Point;
use crate::graph::{GraphBuilder, RoadNetwork};
use crate::ids::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`radial_city`].
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct RadialConfig {
    /// Number of concentric rings (≥ 1).
    pub rings: usize,
    /// Number of nodes per ring (≥ 3).
    pub spokes: usize,
    /// Radial distance between consecutive rings.
    pub ring_gap: f64,
    /// Edge weight = Euclidean length × uniform sample from this range.
    pub weight_factor: (f64, f64),
    /// Probability that a spoke segment between two consecutive rings is
    /// present (ring edges are always present; connectivity is maintained by
    /// guaranteeing at least one spoke per ring pair).
    pub spoke_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RadialConfig {
    fn default() -> Self {
        RadialConfig {
            rings: 12,
            spokes: 24,
            ring_gap: 1.0,
            weight_factor: (1.0, 1.2),
            spoke_prob: 0.6,
            seed: 0,
        }
    }
}

/// Generate a radial city network per `cfg`.
pub fn radial_city(cfg: &RadialConfig) -> Result<RoadNetwork> {
    assert!(cfg.rings >= 1, "need at least one ring");
    assert!(cfg.spokes >= 3, "need at least 3 spokes");
    assert!(
        cfg.weight_factor.0 >= 1.0 && cfg.weight_factor.1 >= cfg.weight_factor.0,
        "weight factors must satisfy 1 <= lo <= hi"
    );
    assert!((0.0..=1.0).contains(&cfg.spoke_prob), "spoke_prob must be a fraction");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7261_6469); // "radi"

    let mut b = GraphBuilder::new();
    b.reserve(cfg.rings * cfg.spokes + 1, cfg.rings * cfg.spokes * 2);
    let center = b.add_node(Point::new(0.0, 0.0))?;
    // Node layout: ring r (1-based), spoke s → id 1 + (r-1)*spokes + s.
    let id = |r: usize, s: usize| NodeId::from_index(1 + (r - 1) * cfg.spokes + s);
    for r in 1..=cfg.rings {
        let radius = r as f64 * cfg.ring_gap;
        for s in 0..cfg.spokes {
            let theta = s as f64 / cfg.spokes as f64 * std::f64::consts::TAU;
            b.add_node(Point::new(radius * theta.cos(), radius * theta.sin()))?;
        }
    }

    let factor = |rng: &mut StdRng| {
        if cfg.weight_factor.0 == cfg.weight_factor.1 {
            cfg.weight_factor.0
        } else {
            rng.gen_range(cfg.weight_factor.0..cfg.weight_factor.1)
        }
    };

    // Ring edges: consecutive nodes on the same ring.
    for r in 1..=cfg.rings {
        for s in 0..cfg.spokes {
            let f = factor(&mut rng);
            b.add_euclidean_edge(id(r, s), id(r, (s + 1) % cfg.spokes), f)?;
        }
    }
    // Spokes: centre to ring 1, then ring r to ring r+1. At least one spoke
    // per ring pair is forced so every ring is reachable.
    for s in 0..cfg.spokes {
        let f = factor(&mut rng);
        if s == 0 || rng.gen::<f64>() < cfg.spoke_prob {
            b.add_euclidean_edge(center, id(1, s), f)?;
        }
    }
    for r in 1..cfg.rings {
        let forced = rng.gen_range(0..cfg.spokes);
        for s in 0..cfg.spokes {
            if s == forced || rng.gen::<f64>() < cfg.spoke_prob {
                let f = factor(&mut rng);
                b.add_euclidean_edge(id(r, s), id(r + 1, s), f)?;
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_radial_is_connected_and_admissible() {
        let g = radial_city(&RadialConfig::default()).unwrap();
        assert_eq!(g.num_nodes(), 12 * 24 + 1);
        assert!(g.is_connected());
        assert!(g.euclidean_admissible(1e-9));
    }

    #[test]
    fn single_ring_works() {
        let g = radial_city(&RadialConfig { rings: 1, spokes: 5, ..Default::default() }).unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert!(g.is_connected());
    }

    #[test]
    fn zero_spoke_probability_still_connects() {
        let g =
            radial_city(&RadialConfig { spoke_prob: 0.0, seed: 9, ..Default::default() }).unwrap();
        assert!(g.is_connected(), "forced spokes must keep rings attached");
    }

    #[test]
    fn full_spokes_edge_count() {
        let cfg = RadialConfig { rings: 3, spokes: 4, spoke_prob: 1.0, ..Default::default() };
        let g = radial_city(&cfg).unwrap();
        // ring edges: 3*4; centre spokes: 4; inter-ring spokes: 2*4.
        assert_eq!(g.num_edges(), 12 + 4 + 8);
    }

    #[test]
    fn rings_lie_at_expected_radii() {
        let g =
            radial_city(&RadialConfig { rings: 2, spokes: 4, ring_gap: 3.0, ..Default::default() })
                .unwrap();
        let origin = Point::new(0.0, 0.0);
        assert!((g.point(NodeId(1)).distance(origin) - 3.0).abs() < 1e-9);
        assert!((g.point(NodeId(5)).distance(origin) - 6.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 3 spokes")]
    fn too_few_spokes_panics() {
        let _ = radial_city(&RadialConfig { spokes: 2, ..Default::default() });
    }
}
