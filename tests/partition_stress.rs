//! Nightly-scale stress of region-owned placement: a 10 000-query
//! hotspot workload pushed through 8 region-owned shards × 8 worker
//! threads, racing the same stream through a round-robin fleet.
//!
//! `#[ignore]`d in quick runs (`cargo test`); CI's `test-threaded` job
//! runs it explicitly with `--ignored`. What it guards:
//!
//! * **the locality payoff is real** — with per-shard LRU tree caches,
//!   region-owned routing must end the run with a strictly higher
//!   fleet-wide cache hit rate than round-robin on the identical stream
//!   (round-robin re-learns every hotspot root on every shard; region
//!   ownership grows it once);
//! * **no lost or duplicated outcomes under concurrent routing** — every
//!   batch yields exactly one [`ClientOutcome`] per request, in request
//!   order, every delivered client exactly once, for both placements;
//! * **placement is report-invisible at scale** — the two fleets' report
//!   streams stay byte-identical across all 100 batches even while their
//!   physical cache counters drift apart.

use opaque::{
    CachePolicy, ClientOutcome, DirectionsBackend, ExecutionPolicy, ObfuscationMode,
    PartitionPolicy, ServiceBuilder,
};
use pathsearch::SharingPolicy;
use roadnet::SpatialIndex;
use roadnet::generators::{GridConfig, grid_network};
use std::collections::HashSet;
use workload::{ProtectionDistribution, QueryDistribution, WorkloadConfig, generate_requests};

const SHARDS: usize = 8;
const THREADS: usize = 8;
const BATCHES: usize = 100;
const BATCH_SIZE: usize = 100; // BATCHES × BATCH_SIZE = 10_000 queries

#[test]
#[ignore = "nightly stress: 10k hotspot queries, region-owned vs round-robin cache locality"]
fn hotspot_locality_beats_round_robin_without_losing_outcomes() {
    let g = grid_network(&GridConfig { width: 32, height: 32, seed: 0x9A27, ..Default::default() })
        .expect("valid network");
    let idx = SpatialIndex::build(&g);

    let build = |partition: PartitionPolicy| {
        ServiceBuilder::new()
            .map(g.clone())
            .seed(0x9A27)
            .shards(SHARDS)
            .partition_policy(partition)
            .execution_policy(ExecutionPolicy::WorkerPool { threads: THREADS })
            // Independent mode: one obfuscated unit per request, so the
            // routing layer sees all 100 units of every batch. Auto
            // sharing roots each unit's trees at its (hotspot-clustered)
            // target side — the roots region routing clusters per shard.
            .obfuscation_mode(ObfuscationMode::Independent)
            .sharing_policy(SharingPolicy::Auto)
            .cache_policy(CachePolicy::Lru { trees: 64 })
            .build()
            .expect("valid configuration")
    };
    let mut region = build(PartitionPolicy::RegionOwned { halo: 2 });
    let mut round_robin = build(PartitionPolicy::RoundRobin);
    assert!(region.backend().partition().is_some());

    for batch_no in 0..BATCHES {
        let requests = generate_requests(
            &g,
            &idx,
            &WorkloadConfig {
                num_requests: BATCH_SIZE,
                // Few tight hotspots with skewed popularity: the
                // cache-friendly workload the partition exists for.
                queries: QueryDistribution::Hotspot { hotspots: 8, exponent: 1.0, spread: 0.005 },
                protection: ProtectionDistribution::Fixed { f_s: 4, f_t: 1 },
                seed: batch_no as u64,
            },
        );
        let a = region.process_batch(&requests).expect("region batch succeeds");
        let b = round_robin.process_batch(&requests).expect("round-robin batch succeeds");

        // Conservation, independently for both placements: one outcome
        // per request in request order, every delivery unique.
        for (label, response) in [("region", &a), ("round-robin", &b)] {
            assert_eq!(response.outcomes.len(), requests.len(), "{label} batch {batch_no}");
            for (slot, (request, (client, _))) in
                requests.iter().zip(&response.outcomes).enumerate()
            {
                assert_eq!(request.client, *client, "{label} batch {batch_no} slot {slot}");
            }
            let delivered =
                response.outcomes.iter().filter(|(_, o)| *o == ClientOutcome::Delivered).count();
            assert_eq!(
                delivered,
                response.results.len(),
                "{label} batch {batch_no}: every Delivered outcome has exactly one result"
            );
            let unique: HashSet<_> = response.results.iter().map(|r| r.client).collect();
            assert_eq!(
                unique.len(),
                response.results.len(),
                "{label} batch {batch_no}: duplicate delivery"
            );
        }
        // Placement stays report-invisible while the caches diverge.
        assert_eq!(
            serde_json::to_string(&a.report).unwrap(),
            serde_json::to_string(&b.report).unwrap(),
            "batch {batch_no}: reports must stay byte-identical across placement"
        );
    }

    // The payoff: same stream, same cache capacity, strictly better hit
    // rate under region ownership. Round-robin shows every hotspot root
    // to every shard (≈ SHARDS cold misses per root plus capacity churn);
    // region routing shows each root to its owner.
    let rate = |stats: opaque::ServerStats| {
        let total = stats.tree_cache_hits + stats.tree_cache_misses;
        assert!(total > 0, "cached fleets must have consulted their caches");
        stats.tree_cache_hits as f64 / total as f64
    };
    let region_rate = rate(region.backend().stats());
    let rr_rate = rate(round_robin.backend().stats());
    assert!(
        region_rate > rr_rate,
        "region-owned hit rate {region_rate:.4} must strictly beat round-robin {rr_rate:.4}"
    );

    // Both fleets served every query; region routing actually used more
    // than one shard (the partition spread the hotspots).
    for (label, svc) in [("region", &region), ("round-robin", &round_robin)] {
        assert_eq!(
            svc.backend().stats().obfuscated_queries,
            (BATCHES * BATCH_SIZE) as u64,
            "{label}: every unit served exactly once"
        );
    }
    let busy = region.backend().load_per_shard().iter().filter(|&&p| p > 0).count();
    assert!(busy > 1, "hotspots all routed to one shard: {:?}", region.backend().load_per_shard());
}
