//! Error types for the OPAQUE pipeline.

use roadnet::NodeId;
use std::fmt;

/// Errors raised by the obfuscator, server, or filter.
#[derive(Debug, Clone, PartialEq)]
pub enum OpaqueError {
    /// Protection settings must request at least the true endpoint
    /// (`f_S ≥ 1`, `f_T ≥ 1`).
    InvalidProtection {
        /// Requested source-set size.
        f_s: u32,
        /// Requested target-set size.
        f_t: u32,
    },
    /// The obfuscator could not find enough distinct fake endpoints (map too
    /// small for the requested anonymity).
    NotEnoughFakes {
        /// Fake endpoints the protection settings demanded.
        requested: usize,
        /// Distinct candidates the map could offer.
        available: usize,
    },
    /// A query endpoint is not a node of the map.
    UnknownNode {
        /// The endpoint that is not on the map.
        node: NodeId,
    },
    /// The server's candidate set is missing the path a client asked for —
    /// either the pair is disconnected or the server misbehaved.
    MissingResult {
        /// True source of the unanswered pair.
        source: NodeId,
        /// True destination of the unanswered pair.
        destination: NodeId,
    },
    /// A returned candidate path failed verification against the
    /// obfuscator's map (tampering or map mismatch).
    CorruptResult {
        /// True source of the failed pair.
        source: NodeId,
        /// True destination of the failed pair.
        destination: NodeId,
    },
    /// A batch submitted for shared obfuscation was empty.
    EmptyBatch,
    /// A directly handed batch carried two requests with the same
    /// [`ClientId`](crate::query::ClientId). The pipeline restores
    /// request order and routes delivered paths by client id, so
    /// duplicates are ambiguous. Only
    /// [`OpaqueService::process_batch`](crate::OpaqueService::process_batch)
    /// raises this (its caller owns the batch composition); the gateway
    /// submit path instead *defers* the duplicate to the next batch
    /// window ([`SubmitOutcome::Deferred`](crate::SubmitOutcome::Deferred))
    /// and never produces this error.
    DuplicateClient {
        /// The client id that appeared more than once.
        client: crate::query::ClientId,
    },
    /// A service was configured inconsistently (missing map, zero shards,
    /// mismatched weights, empty batch policy, …).
    InvalidConfig {
        /// What was inconsistent.
        reason: String,
    },
}

impl fmt::Display for OpaqueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpaqueError::InvalidProtection { f_s, f_t } => {
                write!(f, "invalid protection settings (f_S={f_s}, f_T={f_t}); both must be >= 1")
            }
            OpaqueError::NotEnoughFakes { requested, available } => {
                write!(
                    f,
                    "cannot pick {requested} fake endpoints, only {available} candidates available"
                )
            }
            OpaqueError::UnknownNode { node } => write!(f, "node {node} is not on the map"),
            OpaqueError::MissingResult { source, destination } => {
                write!(f, "no candidate path answers Q({source}, {destination})")
            }
            OpaqueError::CorruptResult { source, destination } => {
                write!(f, "candidate path for Q({source}, {destination}) failed verification")
            }
            OpaqueError::EmptyBatch => write!(f, "empty request batch"),
            OpaqueError::DuplicateClient { client } => {
                write!(f, "client {client} appears more than once in the batch")
            }
            OpaqueError::InvalidConfig { reason } => {
                write!(f, "invalid service configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for OpaqueError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, OpaqueError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_parameters() {
        let e = OpaqueError::InvalidProtection { f_s: 0, f_t: 3 };
        assert!(e.to_string().contains("f_S=0"));
        let e = OpaqueError::NotEnoughFakes { requested: 10, available: 4 };
        assert!(e.to_string().contains("10") && e.to_string().contains('4'));
        let e = OpaqueError::MissingResult { source: NodeId(1), destination: NodeId(2) };
        assert!(e.to_string().contains("Q(1, 2)"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(OpaqueError::EmptyBatch);
        assert!(!e.to_string().is_empty());
    }
}
