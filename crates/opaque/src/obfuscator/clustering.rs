//! Path-query clustering — the first step of query obfuscation (§IV: "the
//! former step partitions the received queries into disjoint query sets").
//!
//! Shared obfuscation only pays off when the clustered queries are
//! *spatially compatible*: Lemma 1 charges every source a tree reaching the
//! farthest target, so mixing a downtown commute with a cross-state trip
//! into one `Q(S,T)` forces huge trees for everyone. The greedy clusterer
//! below therefore groups requests whose sources and destinations both lie
//! within a radius proportional to the batch's typical query length,
//! capping cluster size so one obfuscated query never grows unbounded.

use crate::query::ClientRequest;
use roadnet::{Point, RoadNetwork};

/// Parameters for [`cluster_requests`].
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClusteringConfig {
    /// Cluster admission radius, as a multiple of the batch's median query
    /// Euclidean length. A request joins a cluster only if its source lies
    /// within this radius of the cluster's source centroid *and* its
    /// destination within the radius of the destination centroid.
    pub radius_scale: f64,
    /// Maximum number of requests per cluster (≥ 1).
    pub max_cluster_size: usize,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        ClusteringConfig { radius_scale: 0.75, max_cluster_size: 8 }
    }
}

/// A cluster of mutually compatible requests, by index into the input batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cluster {
    /// Indices into the clustered request batch.
    pub members: Vec<usize>,
}

/// Greedy single-pass clustering of `requests`, deterministic in input
/// order. Every request lands in exactly one cluster.
pub fn cluster_requests(
    map: &RoadNetwork,
    requests: &[ClientRequest],
    cfg: &ClusteringConfig,
) -> Vec<Cluster> {
    assert!(cfg.max_cluster_size >= 1, "clusters must hold at least one request");
    assert!(cfg.radius_scale >= 0.0, "radius scale must be non-negative");
    if requests.is_empty() {
        return Vec::new();
    }

    // Admission radius from the batch's median query length — robust to a
    // few outlier long-haul queries.
    let mut lengths: Vec<f64> =
        requests.iter().map(|r| map.euclidean(r.query.source, r.query.destination)).collect();
    lengths.sort_by(f64::total_cmp);
    let median = lengths[lengths.len() / 2].max(f64::EPSILON);
    let radius = cfg.radius_scale * median;

    struct Centroids {
        members: Vec<usize>,
        src_sum: Point,
        dst_sum: Point,
    }
    impl Centroids {
        fn src_centroid(&self) -> Point {
            let k = self.members.len() as f64;
            Point::new(self.src_sum.x / k, self.src_sum.y / k)
        }
        fn dst_centroid(&self) -> Point {
            let k = self.members.len() as f64;
            Point::new(self.dst_sum.x / k, self.dst_sum.y / k)
        }
    }

    let mut clusters: Vec<Centroids> = Vec::new();
    for (i, r) in requests.iter().enumerate() {
        let s = map.point(r.query.source);
        let t = map.point(r.query.destination);
        let slot = clusters.iter().position(|c| {
            c.members.len() < cfg.max_cluster_size
                && c.src_centroid().distance(s) <= radius
                && c.dst_centroid().distance(t) <= radius
        });
        match slot {
            Some(j) => {
                let c = &mut clusters[j];
                c.members.push(i);
                c.src_sum = Point::new(c.src_sum.x + s.x, c.src_sum.y + s.y);
                c.dst_sum = Point::new(c.dst_sum.x + t.x, c.dst_sum.y + t.y);
            }
            None => clusters.push(Centroids { members: vec![i], src_sum: s, dst_sum: t }),
        }
    }
    clusters.into_iter().map(|c| Cluster { members: c.members }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{ClientId, PathQuery, ProtectionSettings};
    use roadnet::NodeId;
    use roadnet::generators::{GridConfig, grid_network};

    fn request(i: u32, s: u32, t: u32) -> ClientRequest {
        ClientRequest::new(
            ClientId(i),
            PathQuery::new(NodeId(s), NodeId(t)),
            ProtectionSettings::new(2, 2).unwrap(),
        )
    }

    fn map() -> RoadNetwork {
        grid_network(&GridConfig {
            width: 20,
            height: 20,
            seed: 0,
            jitter: 0.0,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn nearby_queries_cluster_together() {
        let g = map();
        // Two pairs of almost-identical commutes plus one far-away query.
        let reqs = vec![
            request(0, 0, 19),    // top-left → top-right
            request(1, 20, 39),   // one row down, same direction
            request(2, 380, 399), // bottom row, far from the first two sources
        ];
        let clusters = cluster_requests(&g, &reqs, &ClusteringConfig::default());
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].members, vec![0, 1]);
        assert_eq!(clusters[1].members, vec![2]);
    }

    #[test]
    fn every_request_lands_in_exactly_one_cluster() {
        let g = map();
        let reqs: Vec<ClientRequest> =
            (0..30).map(|i| request(i, i * 13 % 400, (i * 29 + 170) % 400)).collect();
        let clusters = cluster_requests(&g, &reqs, &ClusteringConfig::default());
        let mut seen = vec![false; reqs.len()];
        for c in &clusters {
            for &m in &c.members {
                assert!(!seen[m], "request {m} in two clusters");
                seen[m] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "request missing from clusters");
    }

    #[test]
    fn max_cluster_size_is_enforced() {
        let g = map();
        // 10 identical queries; cap at 4.
        let reqs: Vec<ClientRequest> = (0..10).map(|i| request(i, 0, 399)).collect();
        let cfg = ClusteringConfig { max_cluster_size: 4, ..Default::default() };
        let clusters = cluster_requests(&g, &reqs, &cfg);
        assert_eq!(clusters.len(), 3); // 4 + 4 + 2
        for c in &clusters {
            assert!(c.members.len() <= 4);
        }
    }

    #[test]
    fn zero_radius_isolates_distinct_queries() {
        let g = map();
        let reqs = vec![request(0, 0, 399), request(1, 1, 398)];
        let cfg = ClusteringConfig { radius_scale: 0.0, ..Default::default() };
        let clusters = cluster_requests(&g, &reqs, &cfg);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn identical_queries_share_a_cluster_even_at_zero_radius() {
        let g = map();
        let reqs = vec![request(0, 0, 399), request(1, 0, 399)];
        let cfg = ClusteringConfig { radius_scale: 0.0, ..Default::default() };
        let clusters = cluster_requests(&g, &reqs, &cfg);
        assert_eq!(clusters.len(), 1, "distance 0 ≤ radius 0 must admit");
    }

    #[test]
    fn empty_batch_gives_no_clusters() {
        let g = map();
        assert!(cluster_requests(&g, &[], &ClusteringConfig::default()).is_empty());
    }

    #[test]
    fn huge_radius_groups_everything_up_to_cap() {
        let g = map();
        let reqs: Vec<ClientRequest> = (0..6).map(|i| request(i, i * 50, 399 - i * 30)).collect();
        let cfg = ClusteringConfig { radius_scale: 1e6, max_cluster_size: 100 };
        let clusters = cluster_requests(&g, &reqs, &cfg);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].members.len(), 6);
    }
}
