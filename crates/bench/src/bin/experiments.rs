//! Experiment harness CLI.
//!
//! ```text
//! experiments                      # run everything at full scale
//! experiments e3 e6                # run a subset
//! experiments --quick              # CI-sized inputs
//! experiments --json out.json      # also dump machine-readable results
//! experiments --perf-json out.json # also dump the CI perf trajectory
//!                                  # (experiment → wall_ms/trees/hit rate)
//! ```

use bench::experiments::{ALL_IDS, run_by_id};
use bench::{ExperimentTable, PerfPoint, PerfTrajectory, Scale};
use std::io::Write;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::full();
    let mut json_path: Option<String> = None;
    let mut perf_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::quick(),
            "--json" => {
                json_path = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                }));
            }
            "--perf-json" => {
                perf_path = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--perf-json needs a path");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!("usage: experiments [--quick] [--json PATH] [--perf-json PATH] [e1 ..]");
                return;
            }
            id => ids.push(id.to_ascii_lowercase()),
        }
    }
    if ids.is_empty() {
        ids = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }

    let mut stdout = std::io::stdout().lock();
    let mut results: Vec<ExperimentTable> = Vec::new();
    let mut perf = PerfTrajectory::default();
    for id in &ids {
        let t0 = Instant::now();
        match run_by_id(id, &scale) {
            Some(table) => {
                let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                writeln!(stdout, "{}", table.render()).expect("stdout");
                perf.record(PerfPoint::from_table(&table, wall_ms));
                results.push(table);
            }
            None => {
                eprintln!("unknown experiment id: {id} (known: {})", ALL_IDS.join(", "));
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&results).expect("tables serialize");
        std::fs::write(&path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {} experiment tables to {path}", results.len());
    }
    if let Some(path) = perf_path {
        std::fs::write(&path, perf.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote perf trajectory ({} experiments) to {path}", perf.points.len());
    }
}
