//! Per-connection state machine.
//!
//! A connection moves through four phases:
//!
//! ```text
//! Reading ──frame──▶ Submitted(Ticket) ──event──▶ Writing ──error──▶ Draining
//!    ▲                                               │
//!    └───────────────── outbound flushed ◀───────────┘
//! ```
//!
//! The phases overlap freely — a pipelining client can have requests in
//! flight while replies stream back — so [`Connection`] tracks them as
//! orthogonal facts (`in_flight`, outbound bytes, `draining`) and reports
//! the dominant one via [`Connection::phase`]. Backpressure is the one
//! coupling: when the outbound buffer crosses its cap the connection
//! stops reading ([`Connection::wants_read`] goes false), which stops
//! submitting, which lets the gateway's own admission control see the
//! slow consumer instead of buffering for it without bound.

use crate::error::{NetError, Result};
use crate::frame::{FrameDecoder, encode_frame};
use crate::wire::{WireReply, encode_message};
use std::io::{Read, Write};
use std::net::TcpStream;

/// Socket read granularity.
const READ_CHUNK: usize = 16 * 1024;

/// The dominant activity of a connection, for observability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnPhase {
    /// Waiting for (or parsing) request frames.
    Reading,
    /// At least one request is inside the gateway awaiting its event.
    Submitted,
    /// Replies are buffered and being flushed to the socket.
    Writing,
    /// A protocol error was queued; flushing then closing.
    Draining,
}

/// One client connection: socket, frame decoder, outbound buffer, and
/// the in-flight ledger.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    decoder: FrameDecoder,
    outbound: Vec<u8>,
    /// Flushed prefix of `outbound`.
    out_pos: usize,
    /// Requests submitted to the gateway but not yet answered.
    in_flight: usize,
    draining: bool,
    closed: bool,
    outbound_cap: usize,
}

impl Connection {
    /// Adopt an accepted stream (made non-blocking here).
    pub fn new(stream: TcpStream, max_frame: u32, outbound_cap: usize) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Connection {
            stream,
            decoder: FrameDecoder::new(max_frame),
            outbound: Vec::new(),
            out_pos: 0,
            in_flight: 0,
            draining: false,
            closed: false,
            outbound_cap,
        })
    }

    /// The underlying socket (for pollfd registration).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Whether the reactor should watch this connection for readability.
    /// False once draining/closed, and false under backpressure: a peer
    /// that won't drain its replies doesn't get to submit more work.
    pub fn wants_read(&self) -> bool {
        !self.draining && !self.closed && self.pending_out() < self.outbound_cap
    }

    /// Whether bytes are waiting to be flushed.
    pub fn wants_write(&self) -> bool {
        !self.closed && self.pending_out() > 0
    }

    /// Unflushed outbound bytes.
    pub fn pending_out(&self) -> usize {
        self.outbound.len() - self.out_pos
    }

    /// The peer closed (or we finished draining) and the entry can be
    /// reaped.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Dominant phase, for stats and debugging.
    pub fn phase(&self) -> ConnPhase {
        if self.draining {
            ConnPhase::Draining
        } else if !self.wants_read() {
            ConnPhase::Writing
        } else if self.in_flight > 0 {
            ConnPhase::Submitted
        } else {
            ConnPhase::Reading
        }
    }

    /// Record a request handed to the gateway.
    pub fn note_submitted(&mut self) {
        self.in_flight += 1;
    }

    /// Requests currently inside the gateway.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Drain the socket into the decoder and return the complete frame
    /// payloads received.
    ///
    /// # Errors
    /// Codec errors ([`NetError::FrameTooLarge`], [`NetError::BadVersion`],
    /// [`NetError::TruncatedFrame`] on mid-frame EOF) and fatal socket
    /// errors. The caller routes these to [`Connection::begin_drain`].
    pub fn read_frames(&mut self) -> Result<Vec<Vec<u8>>> {
        let mut frames = Vec::new();
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Clean EOF only if no frame was cut mid-stream.
                    self.closed = self.pending_out() == 0;
                    self.draining = !self.closed;
                    self.decoder.finish()?;
                    break;
                }
                Ok(n) => {
                    // lint: allow(panic-path) — n ≤ chunk.len() by the
                    // `Read` contract (read never reports more bytes
                    // than the buffer it was handed).
                    self.decoder.push(&chunk[..n]);
                    while let Some(payload) = self.decoder.next_frame()? {
                        frames.push(payload);
                    }
                    // Honor backpressure even inside one readiness burst.
                    if self.pending_out() >= self.outbound_cap {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.closed = true;
                    return Err(e.into());
                }
            }
        }
        Ok(frames)
    }

    /// Frame and buffer one reply; terminal replies settle an in-flight
    /// request.
    ///
    /// # Errors
    /// [`NetError::Malformed`] when the reply fails to serialize and
    /// [`NetError::PayloadTooLarge`] when it cannot be framed at all. The
    /// reply is not buffered (the in-flight settle still happens — the
    /// request *was* answered, delivery failed); the caller decides
    /// whether to drain the connection.
    pub fn queue_reply(&mut self, reply: &WireReply) -> Result<()> {
        if reply.is_terminal() {
            self.in_flight = self.in_flight.saturating_sub(1);
        }
        let payload = encode_message(reply)?;
        encode_frame(&payload, &mut self.outbound)
    }

    /// Queue the fatal error notice and switch to Draining: pending
    /// replies flush, then the socket closes. No further reads happen.
    pub fn begin_drain(&mut self, error: &NetError) {
        if self.draining || self.closed {
            return;
        }
        // The notice is a short string and always frames; if it somehow
        // could not, the connection still drains — just silently.
        let _ = self.queue_reply(&WireReply::Error { reason: error.to_string() });
        self.draining = true;
    }

    /// Flush buffered replies until the socket pushes back. Closes the
    /// connection once a draining buffer empties.
    ///
    /// # Errors
    /// Fatal socket errors; the connection is marked closed first.
    pub fn flush(&mut self) -> Result<()> {
        while self.out_pos < self.outbound.len() {
            // lint: allow(panic-path) — out_pos < outbound.len() is the
            // loop condition one line up, and out_pos only grows by the
            // write's own byte count.
            match self.stream.write(&self.outbound[self.out_pos..]) {
                Ok(0) => {
                    self.closed = true;
                    return Err(NetError::Io(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "peer stopped accepting bytes",
                    )));
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.closed = true;
                    return Err(e.into());
                }
            }
        }
        if self.out_pos >= self.outbound.len() {
            self.outbound.clear();
            self.out_pos = 0;
            if self.draining {
                let _ = self.stream.shutdown(std::net::Shutdown::Both);
                self.closed = true;
            }
        } else if self.out_pos > self.outbound.len() / 2 {
            // Keep the buffer from growing a dead prefix under sustained load.
            self.outbound.drain(..self.out_pos);
            self.out_pos = 0;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{DEFAULT_MAX_FRAME, frame_vec};
    use opaque::{ClientId, Ticket};
    use std::net::TcpListener;

    fn pair() -> (Connection, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        (Connection::new(accepted, DEFAULT_MAX_FRAME, 1024).unwrap(), client)
    }

    fn wait_frames(conn: &mut Connection) -> Vec<Vec<u8>> {
        for _ in 0..200 {
            let frames = conn.read_frames().unwrap();
            if !frames.is_empty() {
                return frames;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        panic!("no frames arrived");
    }

    #[test]
    fn frames_cross_the_socket() {
        let (mut conn, mut client) = pair();
        client.write_all(&frame_vec(b"one").unwrap()).unwrap();
        client.write_all(&frame_vec(b"two").unwrap()).unwrap();
        let frames = wait_frames(&mut conn);
        assert_eq!(frames, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(conn.phase(), ConnPhase::Reading);
    }

    #[test]
    fn submitted_then_writing_then_reading_again() {
        let (mut conn, mut client) = pair();
        conn.note_submitted();
        assert_eq!(conn.phase(), ConnPhase::Submitted);
        conn.queue_reply(&WireReply::Cancelled { ticket: Ticket(1), client: ClientId(0) }).unwrap();
        assert_eq!(conn.in_flight(), 0);
        assert!(conn.wants_write());
        conn.flush().unwrap();
        assert!(!conn.wants_write());
        assert_eq!(conn.phase(), ConnPhase::Reading);
        // The reply is readable on the client side.
        client.set_nonblocking(false).unwrap();
        let mut buf = [0u8; 256];
        let n = client.read(&mut buf).unwrap();
        assert!(n > crate::frame::HEADER_LEN);
    }

    #[test]
    fn backpressure_stops_reading_until_flushed() {
        let (mut conn, _client) = pair();
        conn.outbound_cap = 8;
        conn.queue_reply(&WireReply::Cancelled { ticket: Ticket(1), client: ClientId(0) }).unwrap();
        assert!(conn.pending_out() > 8);
        assert!(!conn.wants_read(), "a full outbound buffer must pause reads");
        assert_eq!(conn.phase(), ConnPhase::Writing);
        conn.flush().unwrap();
        assert!(conn.wants_read());
    }

    #[test]
    fn protocol_error_drains_and_closes() {
        let (mut conn, mut client) = pair();
        let err = NetError::BadVersion { got: 42 };
        conn.begin_drain(&err);
        assert_eq!(conn.phase(), ConnPhase::Draining);
        assert!(!conn.wants_read());
        conn.flush().unwrap();
        assert!(conn.is_closed());
        // The client received the typed error notice before the close.
        client.set_nonblocking(false).unwrap();
        let mut bytes = Vec::new();
        client.read_to_end(&mut bytes).unwrap();
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.push(&bytes);
        let payload = dec.next_frame().unwrap().unwrap();
        let reply: WireReply = crate::wire::decode_message(&payload).unwrap();
        match reply {
            WireReply::Error { reason } => assert!(reason.contains("42"), "{reason}"),
            other => panic!("expected Error notice, got {other:?}"),
        }
    }

    #[test]
    fn peer_eof_mid_frame_is_truncated() {
        let (mut conn, mut client) = pair();
        let wire = frame_vec(b"chopped").unwrap();
        client.write_all(&wire[..wire.len() - 3]).unwrap();
        drop(client);
        let mut result = Ok(Vec::new());
        for _ in 0..200 {
            result = conn.read_frames();
            match &result {
                Ok(frames) if frames.is_empty() && !conn.is_closed() => {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                _ => break,
            }
        }
        match result {
            Err(NetError::TruncatedFrame { missing: 3 }) => {}
            other => panic!("expected TruncatedFrame, got {other:?}"),
        }
    }
}
