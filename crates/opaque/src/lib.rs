//! # opaque — the OPAQUE path-privacy system (ICDE 2009)
//!
//! A full reproduction of *OPAQUE: Protecting Path Privacy in Directions
//! Search* (Lee, Lee, Leong & Zheng, ICDE 2009). Directions search exposes
//! users' sources and destinations to a semi-trusted server; OPAQUE hides
//! them by mixing true endpoints with fakes into **obfuscated path queries**
//! `Q(S, T)` (Definition 1), which a trusted obfuscator formulates and the
//! server answers wholesale with multiple-source multiple-destination
//! search. The breach probability of a protected query is `1/(|S|·|T|)`
//! (Definition 2); the processing cost is `O(Σ_{s∈S} max_{t∈T} ‖s,t‖²)`
//! (Lemma 1).
//!
//! ## Crate layout (mirrors Figure 6)
//!
//! * [`query`] — path queries, protection settings, obfuscated path queries;
//! * [`obfuscator`] — the trusted middlebox: fake-endpoint selection
//!   strategies, query clustering, independent & shared obfuscation;
//! * [`server`] — the directions-search server with its obfuscated path
//!   query processor;
//! * [`filter`] — the candidate result path filter;
//! * [`system`] — the assembled client–obfuscator–server pipeline with
//!   accounting;
//! * [`attack`] — uniform, background-knowledge, and collusion adversaries;
//! * [`baselines`] — the §II location-privacy techniques (landmark,
//!   cloaking, naive fakes) for measured comparison;
//! * [`metrics`] — breach probability, entropy, effective anonymity.
//!
//! ## Quick example
//!
//! ```
//! use opaque::{
//!     ClientId, ClientRequest, DirectionsServer, FakeSelection, ObfuscationMode, Obfuscator,
//!     OpaqueSystem, PathQuery, ProtectionSettings,
//! };
//! use pathsearch::SharingPolicy;
//! use roadnet::generators::{GridConfig, grid_network};
//! use roadnet::NodeId;
//!
//! let map = grid_network(&GridConfig { width: 12, height: 12, ..Default::default() }).unwrap();
//! let obfuscator = Obfuscator::new(map.clone(), FakeSelection::default_ring(), 7);
//! let server = DirectionsServer::new(map, SharingPolicy::PerSource);
//! let mut system = OpaqueSystem::new(obfuscator, server);
//!
//! // Alice asks for directions with a 3×3 anonymity requirement.
//! let alice = ClientRequest::new(
//!     ClientId(0),
//!     PathQuery::new(NodeId(0), NodeId(143)),
//!     ProtectionSettings::new(3, 3).unwrap(),
//! );
//! let (results, report) = system.process_batch(&[alice], ObfuscationMode::Independent).unwrap();
//! assert_eq!(results[0].path.source(), NodeId(0));
//! assert!((report.per_client_breach[0].1 - 1.0 / 9.0).abs() < 1e-12);
//! ```

pub mod attack;
pub mod audit;
pub mod baselines;
pub mod error;
pub mod filter;
pub mod metrics;
pub mod obfuscator;
pub mod protocol;
pub mod query;
pub mod server;
pub mod system;

pub use attack::{AttackReport, CollusionReport, InformedAttackReport, IntersectionReport};
pub use audit::{ExposureReport, PrivacyLedger};
pub use baselines::{Technique, TechniqueReport, run_technique};
pub use protocol::{
    CandidateResultsMsg, HopTraffic, ObfuscatedQueryMsg, RequestMsg, ResultMsg, wire_size,
};
pub use error::{OpaqueError, Result};
pub use filter::{ClientResult, filter_candidates};
pub use obfuscator::{
    Cluster, ClusteringConfig, FakeSelection, ObfuscationMode, ObfuscationUnit, Obfuscator,
    cluster_requests,
};
pub use query::{ClientId, ClientRequest, ObfuscatedPathQuery, PathQuery, ProtectionSettings};
pub use server::{DirectionsServer, ServerStats};
pub use system::{BatchReport, OpaqueSystem};
