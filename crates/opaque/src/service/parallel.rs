//! Worker-pool execution of obfuscated-query workloads.
//!
//! Every obfuscated query `Q(S,T)` of a batch is a self-contained unit of
//! work — the server answers each independently (Definition 1), so the
//! server-side cost the paper analyzes in §V is embarrassingly parallel
//! across queries. This module is the execution layer that exploits that:
//! a [`std::thread`] worker pool where each worker is **pinned to one
//! backend shard** (and therefore to that shard's
//! [`pathsearch::SearchArena`] — arenas are `Send` but never shared), and
//! workers pull unit indices from a shared injector queue until the batch
//! is drained. Under region-owned placement
//! ([`crate::PartitionPolicy::RegionOwned`]) the injector is replaced by
//! **per-shard queues** (`process_routed_on_shards`): each unit is
//! pinned to the shard owning its region, and worker `w` drains the
//! queues of every shard `s` with `s % workers == w`.
//!
//! Determinism is the design constraint, not an afterthought:
//!
//! * each MSMD evaluation is a pure function of `(graph, query, policy)` —
//!   the arena only caches buffers, it never changes answers;
//! * results are written back into their unit's slot, so the service's
//!   accounting loop always runs in unit order, independent of which
//!   worker finished first;
//! * per-shard [`crate::server::ServerStats`] land on whichever shard
//!   served the unit, but batch reports only ever read the *fleet-merged*
//!   counters, and [`crate::server::ServerStats::merge`] is commutative —
//!   so scheduling order cannot leak into any report.
//!
//! The equivalence proptest (`tests/parallel_equivalence.rs`) holds the
//! whole layer to byte-identical `BatchReport`s against sequential
//! execution.

use crate::error::{OpaqueError, Result};
use crate::query::ObfuscatedPathQuery;
use crate::service::backend::DirectionsBackend;
use pathsearch::MsmdResult;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How a service executes the obfuscated queries of one batch against its
/// backend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ExecutionPolicy {
    /// One thread, unit by unit, in unit order — the historical behavior
    /// and the reference the determinism harness compares against.
    #[default]
    Sequential,
    /// A worker pool of `threads` OS threads. Each worker owns one backend
    /// shard (every shard holds a view of the whole map, so any shard can
    /// answer any unit) and pulls work from a shared injector queue, so a
    /// straggler unit never idles the rest of the pool.
    WorkerPool {
        /// Number of worker threads; capped at the backend's shard count
        /// (a worker without a shard of its own would have no arena).
        threads: usize,
    },
}

impl ExecutionPolicy {
    /// Check the policy is satisfiable.
    ///
    /// # Errors
    /// [`OpaqueError::InvalidConfig`] for a zero-thread pool.
    pub fn validate(&self) -> Result<()> {
        match self {
            ExecutionPolicy::Sequential => Ok(()),
            ExecutionPolicy::WorkerPool { threads: 0 } => Err(OpaqueError::InvalidConfig {
                reason: "execution policy: a worker pool needs at least one thread".to_string(),
            }),
            ExecutionPolicy::WorkerPool { .. } => Ok(()),
        }
    }

    /// Worker threads this policy asks for (1 for sequential execution).
    pub fn threads(&self) -> usize {
        match self {
            ExecutionPolicy::Sequential => 1,
            ExecutionPolicy::WorkerPool { threads } => (*threads).max(1),
        }
    }

    /// Short name used in experiment tables.
    pub fn name(&self) -> String {
        match self {
            ExecutionPolicy::Sequential => "sequential".to_string(),
            ExecutionPolicy::WorkerPool { threads } => format!("pool({threads})"),
        }
    }
}

/// Fan `queries` out over `shards` with a pool of at most `threads`
/// workers; returns one result per query, **in query order**.
///
/// Worker `w` owns `shards[w]` exclusively for the whole batch (shards
/// beyond the worker count sit this batch out). The injector is a single
/// atomic cursor over the query slice: claiming a unit is one
/// `fetch_add`, so work stays balanced even when unit costs are skewed —
/// exactly the situation obfuscated batches produce, where one large
/// shared query can dwarf the independent ones.
///
/// A worker panic (a poisoned graph view, an out-of-range query) is
/// re-raised on the calling thread once the scope joins, so errors are
/// never silently swallowed into a missing result.
pub(crate) fn process_on_shards<B: DirectionsBackend + Send>(
    shards: &mut [B],
    queries: &[ObfuscatedPathQuery],
    threads: usize,
) -> Vec<MsmdResult> {
    debug_assert!(!shards.is_empty(), "backend fleets are non-empty by construction");
    let workers = threads.clamp(1, shards.len().max(1)).min(queries.len().max(1));
    if workers <= 1 {
        // One worker is a plain sequential sweep on the first shard; do it
        // on the calling thread and skip the spawn/join overhead.
        let shard = &mut shards[0];
        return queries.iter().map(|q| shard.process(q)).collect();
    }

    let injector = AtomicUsize::new(0);
    let mut slots: Vec<Option<MsmdResult>> = (0..queries.len()).map(|_| None).collect();
    let collected: Vec<Vec<(usize, MsmdResult)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter_mut()
            .take(workers)
            .map(|shard| {
                let injector = &injector;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = injector.fetch_add(1, Ordering::Relaxed);
                        let Some(query) = queries.get(i) else { break };
                        local.push((i, shard.process(query)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
            .collect()
    });

    for (i, result) in collected.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "injector handed unit {i} out twice");
        slots[i] = Some(result);
    }
    slots.into_iter().map(|r| r.expect("injector covers every unit exactly once")).collect()
}

/// Routed variant of [`process_on_shards`]: `assignment[i]` names the
/// shard that must serve unit `i` (region ownership), so workers pull
/// from **per-shard queues** instead of the global injector cursor.
///
/// Worker `w` serves every shard `s` with `s % workers == w` — each shard
/// (and its arena and tree cache) stays owned by exactly one thread, even
/// when the pool is narrower than the fleet. There is deliberately no
/// work stealing: clustered placement is the point of region routing, and
/// determinism never depended on scheduling anyway (results land in their
/// unit's slot, stats merge commutatively). Returns one result per query,
/// **in query order**, with worker panics re-raised on the caller.
pub(crate) fn process_routed_on_shards<B: DirectionsBackend + Send>(
    shards: &mut [B],
    queries: &[ObfuscatedPathQuery],
    assignment: &[usize],
    threads: usize,
) -> Vec<MsmdResult> {
    debug_assert_eq!(assignment.len(), queries.len(), "one shard per unit");
    debug_assert!(
        assignment.iter().all(|&s| s < shards.len()),
        "router must only name real shards"
    );
    // Per-shard queues, each in unit order.
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); shards.len()];
    for (i, &s) in assignment.iter().enumerate() {
        queues[s].push(i);
    }

    let workers = threads.clamp(1, shards.len().max(1)).min(queries.len().max(1));
    let mut slots: Vec<Option<MsmdResult>> = (0..queries.len()).map(|_| None).collect();
    if workers <= 1 {
        // One worker still honors the assignment — placement (and the
        // per-shard cache state it builds) must not depend on pool width.
        for (shard, queue) in shards.iter_mut().zip(&queues) {
            for &i in queue {
                slots[i] = Some(shard.process(&queries[i]));
            }
        }
        return finish(slots);
    }

    // Bucket shards (with their queues) by serving worker.
    let mut buckets: Vec<Vec<(&mut B, Vec<usize>)>> = (0..workers).map(|_| Vec::new()).collect();
    for (s, (shard, queue)) in shards.iter_mut().zip(queues).enumerate() {
        buckets[s % workers].push((shard, queue));
    }
    let collected: Vec<Vec<(usize, MsmdResult)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    for (shard, queue) in bucket {
                        for i in queue {
                            local.push((i, shard.process(&queries[i])));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
            .collect()
    });
    for (i, result) in collected.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "unit {i} queued on two shards");
        slots[i] = Some(result);
    }
    finish(slots)
}

/// Unwrap the slot vector, panicking on any unit no queue covered.
fn finish(slots: Vec<Option<MsmdResult>>) -> Vec<MsmdResult> {
    slots.into_iter().map(|r| r.expect("every unit is queued exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::DirectionsServer;
    use pathsearch::SharingPolicy;
    use roadnet::NodeId;
    use roadnet::generators::{GridConfig, grid_network};

    fn fleet(n: usize) -> Vec<DirectionsServer<roadnet::RoadNetwork>> {
        let g = grid_network(&GridConfig { width: 12, height: 12, seed: 4, ..Default::default() })
            .unwrap();
        (0..n).map(|_| DirectionsServer::new(g.clone(), SharingPolicy::PerSource)).collect()
    }

    fn queries(n: u32) -> Vec<ObfuscatedPathQuery> {
        (0..n)
            .map(|i| {
                ObfuscatedPathQuery::new(
                    vec![NodeId(i % 144), NodeId((i * 7 + 3) % 144)],
                    vec![NodeId(143 - i % 144), NodeId((i * 11 + 40) % 144)],
                )
            })
            .collect()
    }

    #[test]
    fn pool_results_land_in_query_order_and_match_sequential() {
        let qs = queries(17);
        let mut seq_fleet = fleet(1);
        let sequential: Vec<MsmdResult> = qs.iter().map(|q| seq_fleet[0].process(q)).collect();

        for threads in [2usize, 3, 4] {
            let mut shards = fleet(threads);
            let pooled = process_on_shards(&mut shards, &qs, threads);
            assert_eq!(pooled.len(), qs.len());
            for (i, (p, s)) in pooled.iter().zip(&sequential).enumerate() {
                assert_eq!(p.num_paths(), s.num_paths(), "unit {i} at {threads} threads");
                for r in 0..p.paths.len() {
                    for c in 0..p.paths[r].len() {
                        assert_eq!(p.paths[r][c], s.paths[r][c], "unit {i} pair ({r},{c})");
                    }
                }
                assert_eq!(p.stats, s.stats, "unit {i}: per-unit counters are assignment-free");
            }
            // Fleet-merged load equals the sequential single server's load:
            // assignment moves counters between shards, never changes sums.
            let merged = shards.iter().fold(crate::server::ServerStats::default(), |mut acc, s| {
                acc.merge(&s.stats());
                acc
            });
            assert_eq!(merged, seq_fleet[0].stats(), "{threads} threads");
        }
    }

    #[test]
    fn pool_clamps_workers_to_shards_and_queries() {
        let qs = queries(3);
        // More threads than shards: capped at the fleet size.
        let mut shards = fleet(2);
        let r = process_on_shards(&mut shards, &qs, 16);
        assert_eq!(r.len(), 3);
        // More threads than queries: never spawns idle workers.
        let mut shards = fleet(8);
        let r = process_on_shards(&mut shards, &qs, 8);
        assert_eq!(r.len(), 3);
        // Zero queries is a no-op.
        let r = process_on_shards(&mut shards, &[], 8);
        assert!(r.is_empty());
    }

    #[test]
    fn routed_pool_matches_sequential_and_honors_assignment() {
        let qs = queries(13);
        let mut seq_fleet = fleet(1);
        let sequential: Vec<MsmdResult> = qs.iter().map(|q| seq_fleet[0].process(q)).collect();
        let assignment: Vec<usize> = (0..qs.len()).map(|i| (i * 3) % 4).collect();

        // Any pool width — including narrower than the fleet and a single
        // worker — serves each unit on its assigned shard.
        for threads in [1usize, 2, 4, 7] {
            let mut shards = fleet(4);
            let routed = process_routed_on_shards(&mut shards, &qs, &assignment, threads);
            assert_eq!(routed.len(), qs.len());
            for (i, (p, s)) in routed.iter().zip(&sequential).enumerate() {
                assert_eq!(p.paths, s.paths, "unit {i} at {threads} threads");
                assert_eq!(p.stats, s.stats, "unit {i} at {threads} threads");
            }
            // Placement is pinned by the assignment, not the pool width.
            for (s, shard) in shards.iter().enumerate() {
                let expected = assignment.iter().filter(|&&a| a == s).count() as u64;
                assert_eq!(
                    shard.stats().obfuscated_queries,
                    expected,
                    "shard {s} at {threads} threads"
                );
            }
        }
        // Zero queries is a no-op.
        let mut shards = fleet(4);
        assert!(process_routed_on_shards(&mut shards, &[], &[], 4).is_empty());
    }

    #[test]
    fn policy_validation_and_names() {
        assert!(ExecutionPolicy::Sequential.validate().is_ok());
        assert!(ExecutionPolicy::WorkerPool { threads: 4 }.validate().is_ok());
        assert!(matches!(
            ExecutionPolicy::WorkerPool { threads: 0 }.validate(),
            Err(OpaqueError::InvalidConfig { .. })
        ));
        assert_eq!(ExecutionPolicy::Sequential.name(), "sequential");
        assert_eq!(ExecutionPolicy::WorkerPool { threads: 4 }.name(), "pool(4)");
        assert_eq!(ExecutionPolicy::Sequential.threads(), 1);
        assert_eq!(ExecutionPolicy::WorkerPool { threads: 4 }.threads(), 4);
        assert_eq!(ExecutionPolicy::default(), ExecutionPolicy::Sequential);
    }

    #[test]
    fn policy_round_trips_through_serde() {
        for policy in [ExecutionPolicy::Sequential, ExecutionPolicy::WorkerPool { threads: 6 }] {
            let json = serde_json::to_string(&policy).unwrap();
            let back: ExecutionPolicy = serde_json::from_str(&json).unwrap();
            assert_eq!(back, policy);
        }
    }
}
