//! ALT — A* with Landmarks and the Triangle inequality (Goldberg &
//! Harrelson, SODA 2005).
//!
//! An *extension* beyond the paper's Dijkstra/A* baseline: precompute
//! shortest-path distances from a few well-spread landmark nodes; then
//! `h(n) = max_L |d(L, t) − d(L, n)|` lower-bounds the remaining network
//! distance by the triangle inequality. Unlike the Euclidean heuristic, ALT
//! reasons in *network* distance, so it stays strong on topologies where
//! straight-line distance is misleading (the radial class in E1) — and it
//! gives the reproduction a second, stronger goal-directed baseline for
//! what single-pair search can achieve against the MSMD sharing numbers.
//!
//! Landmarks are chosen by farthest-point ("avoid") selection with
//! lowest-id tie-breaks (the same determinism idiom as
//! `opaque::service::partition::Partition::build`). The preprocessing
//! requires a **symmetric** (undirected) network — the triangle-inequality
//! bound `|d(L,t) − d(L,n)|` uses one distance table per landmark in both
//! roles, which is only sound when `d(L,·)` equals `d(·,L)`. Every
//! `roadnet` generator produces symmetric networks; [`AltPreprocessing::try_build`]
//! enforces the contract with a typed error for directed views.
//!
//! Beyond the single-pair [`alt`] search, the tables drive the obfuscated
//! batch engines: [`AltPreprocessing::goal_potential`] folds a target set
//! into per-landmark bounds so `π(n) = max_t lb(n, t)` evaluates in
//! `O(|landmarks|)` per node, and [`AltPreprocessing::bi_potential`] forms
//! the feasible pair `(pf, −pf)` the shared-frontier engine keys its
//! bidirectional trees with. Both potentials are *consistent*
//! (1-Lipschitz along edges), which is what lets the guided sweeps keep
//! settled labels exact and replayable through `SweepTrace`.

use crate::astar::astar_with;
use crate::dijkstra::{Goal, Searcher};
use crate::path::Path;
use crate::stats::SearchStats;
use roadnet::{GraphView, NodeId};

/// Why ALT preprocessing refused a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AltError {
    /// The view reports directed arcs; one table per landmark cannot serve
    /// both `d(L,·)` and `d(·,L)` there.
    DirectedGraph,
    /// `num_landmarks` was zero.
    ZeroLandmarks,
    /// `num_landmarks` exceeds the node count.
    TooManyLandmarks {
        /// Landmarks requested.
        requested: usize,
        /// Nodes available.
        nodes: usize,
    },
}

impl std::fmt::Display for AltError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AltError::DirectedGraph => write!(
                f,
                "ALT preprocessing requires a symmetric (undirected) graph: \
                 a single distance table per landmark is unsound when \
                 d(L,n) and d(n,L) can differ"
            ),
            AltError::ZeroLandmarks => write!(f, "need at least one landmark"),
            AltError::TooManyLandmarks { requested, nodes } => {
                write!(f, "more landmarks than nodes ({requested} > {nodes})")
            }
        }
    }
}

impl std::error::Error for AltError {}

/// Precomputed landmark distance tables.
#[derive(Clone, Debug)]
pub struct AltPreprocessing {
    landmarks: Vec<NodeId>,
    /// `dist[l][n]` = network distance from `landmarks[l]` to node `n`
    /// (infinite for unreachable nodes).
    dist: Vec<Vec<f64>>,
}

impl AltPreprocessing {
    /// Select `num_landmarks` landmarks by farthest-point selection (first
    /// landmark = node 0's farthest reachable node, then iteratively the
    /// node maximizing the minimum distance to the chosen set; distance
    /// ties break to the lowest node id) and run one full Dijkstra per
    /// landmark.
    ///
    /// # Panics
    /// Panics if `num_landmarks` is 0 or exceeds the node count. Use
    /// [`Self::try_build`] for the non-panicking form, which additionally
    /// rejects directed graphs with [`AltError::DirectedGraph`].
    pub fn build<G: GraphView>(g: &G, num_landmarks: usize) -> Self {
        assert!(num_landmarks >= 1, "need at least one landmark");
        assert!(num_landmarks <= g.num_nodes(), "more landmarks than nodes");
        Self::build_unchecked(g, num_landmarks)
    }

    /// [`Self::build`] with every precondition reported as a typed
    /// [`AltError`] instead of a panic — including the symmetric-only
    /// contract, which `build` (predating directed views reaching this
    /// layer) leaves to the caller.
    pub fn try_build<G: GraphView>(g: &G, num_landmarks: usize) -> Result<Self, AltError> {
        if !g.is_symmetric() {
            return Err(AltError::DirectedGraph);
        }
        if num_landmarks == 0 {
            return Err(AltError::ZeroLandmarks);
        }
        if num_landmarks > g.num_nodes() {
            return Err(AltError::TooManyLandmarks {
                requested: num_landmarks,
                nodes: g.num_nodes(),
            });
        }
        Ok(Self::build_unchecked(g, num_landmarks))
    }

    fn build_unchecked<G: GraphView>(g: &G, num_landmarks: usize) -> Self {
        let n = g.num_nodes();
        let mut searcher = Searcher::new();

        // Bootstrap: full tree from node 0, take the farthest reachable
        // node as the first landmark (a graph periphery point). Ascending
        // scan with a strict `>` keeps ties on the lowest id.
        searcher.run(g, NodeId(0), &Goal::AllNodes);
        let mut first = NodeId(0);
        let mut first_d = f64::NEG_INFINITY;
        for i in 0..n {
            let node = NodeId::from_index(i);
            if let Some(d) = searcher.distance(node).filter(|d| d.is_finite()) {
                if d > first_d {
                    first_d = d;
                    first = node;
                }
            }
        }

        let mut landmarks = Vec::with_capacity(num_landmarks);
        let mut dist: Vec<Vec<f64>> = Vec::with_capacity(num_landmarks);
        let mut min_dist = vec![f64::INFINITY; n];
        let mut current = first;
        for _ in 0..num_landmarks {
            landmarks.push(current);
            searcher.run(g, current, &Goal::AllNodes);
            let table: Vec<f64> = (0..n)
                .map(|i| searcher.distance(NodeId::from_index(i)).unwrap_or(f64::INFINITY))
                .collect();
            for (m, &d) in min_dist.iter_mut().zip(&table) {
                if d < *m {
                    *m = d;
                }
            }
            dist.push(table);
            // Next landmark: farthest from the chosen set (finite only,
            // lowest id on ties).
            let mut best_d = f64::NEG_INFINITY;
            for (i, &d) in min_dist.iter().enumerate() {
                if d.is_finite() && d > best_d {
                    best_d = d;
                    current = NodeId::from_index(i);
                }
            }
        }
        AltPreprocessing { landmarks, dist }
    }

    /// The selected landmark nodes.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Triangle-inequality lower bound on the network distance `‖n, t‖`.
    ///
    /// On undirected graphs `‖n,t‖ ≥ |d(L,t) − d(L,n)|` for every landmark
    /// `L`; the heuristic takes the best (max) bound. Unreachable entries
    /// contribute nothing.
    #[inline]
    pub fn lower_bound(&self, n: NodeId, t: NodeId) -> f64 {
        let mut best = 0.0f64;
        for table in &self.dist {
            let (dn, dt) = (table[n.index()], table[t.index()]);
            if dn.is_finite() && dt.is_finite() {
                let bound = (dt - dn).abs();
                if bound > best {
                    best = bound;
                }
            }
        }
        best
    }

    /// Memory footprint of the tables, in entries (nodes × landmarks).
    pub fn table_entries(&self) -> usize {
        self.dist.iter().map(Vec::len).sum()
    }

    /// Fold `targets` into a max-over-targets potential
    /// `π(n) = max_t lb(n, t)`, evaluated in `O(|landmarks|)` per node:
    /// for each landmark only the extremes `lo = min_t d(L,t)` and
    /// `hi = max_t d(L,t)` over finite entries matter, because
    /// `max_t |d(L,t) − d(L,n)| = max(hi − d(L,n), d(L,n) − lo)`.
    ///
    /// The result is admissible for *every* target in the set and
    /// consistent (each landmark's term is 1-Lipschitz along edges of a
    /// symmetric graph; a max of 1-Lipschitz functions is 1-Lipschitz), so
    /// a sweep keyed by `dist + π` settles exact labels in every prefix —
    /// the property the trace/adopt layer relies on.
    ///
    /// # Panics
    /// Panics if a target is out of range for the preprocessed graph.
    pub fn goal_potential(&self, targets: &[NodeId]) -> GoalPotential<'_> {
        let bounds: Vec<(f64, f64)> = self
            .dist
            .iter()
            .map(|table| {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &t in targets {
                    let d = table[t.index()];
                    if d.is_finite() {
                        if d < lo {
                            lo = d;
                        }
                        if d > hi {
                            hi = d;
                        }
                    }
                }
                (lo, hi)
            })
            .collect();
        GoalPotential {
            pre: self,
            params: PotentialParams { landmarks: self.landmarks.clone(), bounds },
        }
    }

    /// The feasible potential *pair* for a bidirectional shared-frontier
    /// sweep over `sources × targets`: forward trees are keyed by
    /// `dist + pf(n)`, backward trees by `dist − pf(n)`, with
    /// `pf = (π_T − π_S) / 2` (π_T toward the targets, π_S toward the
    /// sources). The two tree-side potentials sum to zero, so forward and
    /// backward reduced lengths add up to true path lengths and the
    /// per-pair stopping rule `μ ≤ r_f + r_b` stays exact.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range for the preprocessed graph.
    pub fn bi_potential(&self, sources: &[NodeId], targets: &[NodeId]) -> BiPotential<'_> {
        BiPotential {
            to_targets: self.goal_potential(targets),
            to_sources: self.goal_potential(sources),
        }
    }
}

/// The parameters a [`GoalPotential`] was built from — the identity a
/// cached [`crate::trace::SweepTrace`] carries so adoption can insist the
/// stored sweep used *the same* heuristic (guided and plain sweeps from
/// one root settle in different orders and must never alias).
#[derive(Clone, Debug, PartialEq)]
pub struct PotentialParams {
    /// The landmark set of the preprocessing the potential came from.
    landmarks: Vec<NodeId>,
    /// Per-landmark `(lo, hi)` extremes over the goal set's finite table
    /// entries (`(+∞, −∞)` when no target is reachable from a landmark).
    bounds: Vec<(f64, f64)>,
}

/// A max-over-targets ALT lower bound `π(n) = max_t lb(n, t)`, prepared by
/// [`AltPreprocessing::goal_potential`] for one goal set and evaluated in
/// `O(|landmarks|)` per node.
#[derive(Clone, Debug)]
pub struct GoalPotential<'a> {
    pre: &'a AltPreprocessing,
    params: PotentialParams,
}

impl GoalPotential<'_> {
    /// Evaluate `π(n)`. Landmarks that cannot reach `n` (or reach no
    /// target) contribute nothing — on the symmetric graphs the
    /// preprocessing accepts, such landmarks lie in another component and
    /// bound nothing anyway.
    #[inline]
    pub fn eval(&self, n: NodeId) -> f64 {
        let mut best = 0.0f64;
        for (table, &(lo, hi)) in self.pre.dist.iter().zip(&self.params.bounds) {
            let d = table[n.index()];
            if !d.is_finite() || !hi.is_finite() {
                continue;
            }
            let bound = (hi - d).max(d - lo);
            if bound > best {
                best = bound;
            }
        }
        best
    }

    /// The parameters identifying this potential (for trace adoption
    /// checks).
    pub fn params(&self) -> &PotentialParams {
        &self.params
    }
}

/// The `(pf, −pf)` potential pair for bidirectional shared-frontier
/// sweeps — see [`AltPreprocessing::bi_potential`].
#[derive(Clone, Debug)]
pub struct BiPotential<'a> {
    to_targets: GoalPotential<'a>,
    to_sources: GoalPotential<'a>,
}

impl BiPotential<'_> {
    /// The forward-tree potential `pf(n) = (π_T(n) − π_S(n)) / 2`.
    /// Backward trees use its negation, applied by subtraction
    /// (`dist − pf`) so the zero potential stays bitwise inert.
    #[inline]
    pub fn pf(&self, n: NodeId) -> f64 {
        0.5 * (self.to_targets.eval(n) - self.to_sources.eval(n))
    }
}

/// ALT search from `s` to `t` using precomputed landmark tables.
pub fn alt<G: GraphView>(
    g: &G,
    pre: &AltPreprocessing,
    s: NodeId,
    t: NodeId,
) -> (Option<Path>, SearchStats) {
    astar_with(g, s, t, |n| pre.lower_bound(n, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::astar;
    use crate::dijkstra::shortest_path;
    use roadnet::generators::{GridConfig, NetworkClass, grid_network};

    #[test]
    fn alt_matches_dijkstra_on_all_classes() {
        for class in NetworkClass::ALL {
            let g = class.generate(600, 3).unwrap();
            let pre = AltPreprocessing::build(&g, 6);
            let n = g.num_nodes() as u32;
            for (s, t) in [(0, n - 1), (n / 4, 3 * n / 4), (5, 5)] {
                let (p, _) = alt(&g, &pre, NodeId(s), NodeId(t));
                let d = shortest_path(&g, NodeId(s), NodeId(t)).unwrap();
                let p = p.unwrap();
                assert!(
                    (p.distance() - d.distance()).abs() < 1e-9,
                    "{} ({s},{t}): {} vs {}",
                    class.name(),
                    p.distance(),
                    d.distance()
                );
                assert!(p.verify(&g, 1e-9));
            }
        }
    }

    #[test]
    fn alt_settles_no_more_than_dijkstra() {
        let g = NetworkClass::Radial.generate(800, 5).unwrap();
        let pre = AltPreprocessing::build(&g, 8);
        let n = g.num_nodes() as u32;
        let mut searcher = Searcher::new();
        let mut alt_total = 0u64;
        let mut dij_total = 0u64;
        for (s, t) in [(1, n - 2), (n / 3, 2 * n / 3), (10, n / 2)] {
            let (_, st) = alt(&g, &pre, NodeId(s), NodeId(t));
            alt_total += st.settled;
            dij_total += searcher.run(&g, NodeId(s), &Goal::Single(NodeId(t))).settled;
        }
        assert!(alt_total <= dij_total, "ALT {alt_total} vs Dijkstra {dij_total}");
    }

    #[test]
    fn alt_beats_euclidean_astar_on_radial_networks() {
        // Straight-line distance is a poor bound when paths must follow
        // rings; landmark bounds reason in network distance.
        let g = NetworkClass::Radial.generate(800, 7).unwrap();
        let pre = AltPreprocessing::build(&g, 8);
        let n = g.num_nodes() as u32;
        let mut alt_total = 0u64;
        let mut astar_total = 0u64;
        for (s, t) in [(1u32, n - 2), (n / 3, 2 * n / 3), (10, n / 2), (2, n - 10)] {
            let (_, a) = alt(&g, &pre, NodeId(s), NodeId(t));
            let (_, e) = astar(&g, NodeId(s), NodeId(t));
            alt_total += a.settled;
            astar_total += e.settled;
        }
        assert!(
            alt_total < astar_total,
            "ALT {alt_total} should beat Euclidean A* {astar_total} on radial"
        );
    }

    #[test]
    fn landmarks_are_distinct_and_spread() {
        let g = grid_network(&GridConfig { width: 20, height: 20, seed: 1, ..Default::default() })
            .unwrap();
        let pre = AltPreprocessing::build(&g, 4);
        let set: std::collections::HashSet<_> = pre.landmarks().iter().collect();
        assert_eq!(set.len(), 4, "landmarks must be distinct");
        assert_eq!(pre.table_entries(), 4 * 400);
    }

    #[test]
    fn lower_bound_is_admissible() {
        let g = grid_network(&GridConfig { width: 12, height: 12, seed: 2, ..Default::default() })
            .unwrap();
        let pre = AltPreprocessing::build(&g, 5);
        for (a, b) in [(0u32, 143u32), (7, 100), (50, 51), (12, 12)] {
            let truth = crate::dijkstra::shortest_distance(&g, NodeId(a), NodeId(b)).unwrap();
            let bound = pre.lower_bound(NodeId(a), NodeId(b));
            assert!(
                bound <= truth + 1e-9,
                "bound {bound} exceeds true distance {truth} for ({a},{b})"
            );
        }
    }

    #[test]
    fn single_landmark_works() {
        let g = grid_network(&GridConfig { width: 6, height: 6, ..Default::default() }).unwrap();
        let pre = AltPreprocessing::build(&g, 1);
        let (p, _) = alt(&g, &pre, NodeId(0), NodeId(35));
        let d = shortest_path(&g, NodeId(0), NodeId(35)).unwrap();
        assert!((p.unwrap().distance() - d.distance()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one landmark")]
    fn zero_landmarks_panics() {
        let g = grid_network(&GridConfig { width: 4, height: 4, ..Default::default() }).unwrap();
        let _ = AltPreprocessing::build(&g, 0);
    }

    #[test]
    fn try_build_rejects_directed_graphs_and_bad_counts() {
        use roadnet::{GraphBuilder, Point};
        let mut b = GraphBuilder::directed();
        for i in 0..3 {
            b.add_node(Point::new(i as f64, 0.0)).unwrap();
        }
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(0), 5.0).unwrap();
        let directed = b.build().unwrap();
        assert_eq!(AltPreprocessing::try_build(&directed, 2), Err(AltError::DirectedGraph));

        let g = grid_network(&GridConfig { width: 4, height: 4, ..Default::default() }).unwrap();
        assert_eq!(AltPreprocessing::try_build(&g, 0), Err(AltError::ZeroLandmarks));
        assert_eq!(
            AltPreprocessing::try_build(&g, 17),
            Err(AltError::TooManyLandmarks { requested: 17, nodes: 16 })
        );
        let pre = AltPreprocessing::try_build(&g, 3).unwrap();
        assert_eq!(pre.landmarks().len(), 3);
        // The error type renders something actionable.
        assert!(AltError::DirectedGraph.to_string().contains("symmetric"));
    }

    impl PartialEq for AltPreprocessing {
        fn eq(&self, other: &Self) -> bool {
            self.landmarks == other.landmarks && self.dist == other.dist
        }
    }

    #[test]
    fn landmark_selection_is_deterministic() {
        let g = NetworkClass::Geometric.generate(300, 11).unwrap();
        let a = AltPreprocessing::build(&g, 5);
        let b = AltPreprocessing::try_build(&g, 5).unwrap();
        assert_eq!(a, b, "build and try_build must select identically");
    }

    #[test]
    fn goal_potential_matches_max_over_targets() {
        let g = grid_network(&GridConfig { width: 12, height: 12, seed: 4, ..Default::default() })
            .unwrap();
        let pre = AltPreprocessing::build(&g, 5);
        let targets = [NodeId(143), NodeId(7), NodeId(60)];
        let pot = pre.goal_potential(&targets);
        for n in (0..144).step_by(5).map(NodeId) {
            let explicit = targets.iter().map(|&t| pre.lower_bound(n, t)).fold(0.0f64, f64::max);
            let folded = pot.eval(n);
            assert!(
                (explicit - folded).abs() < 1e-12,
                "π({n}) folded {folded} vs explicit max {explicit}"
            );
        }
    }

    #[test]
    fn goal_potential_is_consistent_along_edges() {
        use roadnet::GraphView;
        // |π(u) − π(v)| ≤ w(u,v) for every edge: the invariant that keeps
        // guided sweeps settling exact labels.
        let g = NetworkClass::Radial.generate(400, 9).unwrap();
        let pre = AltPreprocessing::build(&g, 6);
        let pot = pre.goal_potential(&[NodeId(3), NodeId(200)]);
        for u in (0..g.num_nodes() as u32).map(NodeId) {
            let pu = pot.eval(u);
            g.for_each_arc(u, &mut |v, w| {
                let pv = pot.eval(v);
                assert!(
                    (pu - pv).abs() <= w + 1e-9,
                    "potential jump {} over edge ({u},{v}) of weight {w}",
                    (pu - pv).abs()
                );
            });
        }
    }

    #[test]
    fn bi_potential_pair_sums_to_zero_and_is_half_lipschitz() {
        use roadnet::GraphView;
        let g = grid_network(&GridConfig { width: 14, height: 14, seed: 6, ..Default::default() })
            .unwrap();
        let pre = AltPreprocessing::build(&g, 4);
        let bi = pre.bi_potential(&[NodeId(0), NodeId(50)], &[NodeId(195), NodeId(100)]);
        // pf and the backward potential −pf cancel by construction; check
        // pf itself is (1/2+1/2)-Lipschitz so both keyed trees stay
        // consistent: |pf(u) − pf(v)| ≤ w.
        for u in (0..g.num_nodes() as u32).map(NodeId) {
            let pu = bi.pf(u);
            g.for_each_arc(u, &mut |v, w| {
                assert!((pu - bi.pf(v)).abs() <= w + 1e-9);
            });
        }
    }

    #[test]
    fn potential_params_distinguish_goal_sets() {
        let g = grid_network(&GridConfig { width: 10, height: 10, seed: 8, ..Default::default() })
            .unwrap();
        let pre = AltPreprocessing::build(&g, 3);
        let a = pre.goal_potential(&[NodeId(99)]);
        let b = pre.goal_potential(&[NodeId(99)]);
        let c = pre.goal_potential(&[NodeId(42)]);
        assert_eq!(a.params(), b.params());
        assert_ne!(a.params(), c.params());
    }
}
