//! The baseline file: which rules watch which paths.
//!
//! `lint.toml` at the repo root scopes each rule. The parser below reads
//! the subset of TOML the baseline actually uses — `[section]` headers,
//! `key = [ "quoted", "strings" ]` arrays (single-line or multi-line),
//! and `#` comments — with zero dependencies, in keeping with the
//! lint crate's no-new-deps charter. Unknown sections and keys are
//! errors: a typoed scope silently scoping a rule to nothing is exactly
//! the failure mode a lint baseline must not have.

use std::fmt;

/// Parsed baseline. Paths are repo-relative prefixes (scopes) or exact
/// files, forward slashes.
#[derive(Clone, Debug)]
pub struct Config {
    /// R1: path prefixes of report-affecting code.
    pub determinism_scopes: Vec<String>,
    /// R3: exact hot-path files.
    pub panic_path_files: Vec<String>,
    /// R2: path prefixes audited for `unsafe` (normally the whole
    /// workspace).
    pub unsafe_scopes: Vec<String>,
    /// R4: markdown docs whose cross-references must resolve.
    pub doc_files: Vec<String>,
}

impl Default for Config {
    /// The shipped baseline, mirrored in `lint.toml`. Keeping a compiled
    /// default means the self-check test cannot be defeated by deleting
    /// the baseline file.
    fn default() -> Self {
        Config {
            determinism_scopes: vec![
                "crates/pathsearch/src".into(),
                "crates/opaque/src".into(),
                "crates/roadnet/src".into(),
                "crates/workload/src".into(),
            ],
            panic_path_files: vec![
                "crates/opaque-net/src/reactor.rs".into(),
                "crates/opaque-net/src/conn.rs".into(),
                "crates/opaque-net/src/frame.rs".into(),
                "crates/opaque-net/src/server.rs".into(),
                "crates/opaque-net/src/wire.rs".into(),
                "crates/opaque/src/service/mod.rs".into(),
                "crates/opaque/src/service/batcher.rs".into(),
                "crates/opaque/src/service/gateway.rs".into(),
            ],
            unsafe_scopes: vec!["crates".into(), "src".into()],
            doc_files: vec![
                "docs/paper_map.md".into(),
                "docs/scaling.md".into(),
                "docs/formats.md".into(),
                "docs/static_analysis.md".into(),
                "ARCHITECTURE.md".into(),
                "README.md".into(),
            ],
        }
    }
}

/// A baseline parse failure, with the line it happened on.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line in the baseline file.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parse a baseline file. Starts from an *empty* config — the file
    /// is the whole truth, so a missing section scopes that rule to
    /// nothing (and the self-check test pins the shipped file against
    /// [`Config::default`] drift).
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config {
            determinism_scopes: Vec::new(),
            panic_path_files: Vec::new(),
            unsafe_scopes: Vec::new(),
            doc_files: Vec::new(),
        };
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((i, raw)) = lines.next() {
            let line_no = i as u32 + 1;
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                match section.as_str() {
                    "determinism" | "panic_path" | "unsafe_audit" | "doc_refs" => {}
                    other => {
                        return Err(ConfigError {
                            line: line_no,
                            message: format!("unknown section `[{other}]`"),
                        });
                    }
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: line_no,
                    message: format!("expected `key = [...]`, got `{line}`"),
                });
            };
            let key = key.trim();
            // Collect the array text, spanning lines until the `]`.
            let mut array = value.trim().to_string();
            while !array.contains(']') {
                let Some((_, cont)) = lines.next() else {
                    return Err(ConfigError {
                        line: line_no,
                        message: format!("unterminated array for key `{key}`"),
                    });
                };
                array.push(' ');
                array.push_str(strip_toml_comment(cont).trim());
            }
            let items = parse_string_array(&array).ok_or_else(|| ConfigError {
                line: line_no,
                message: format!("`{key}` must be an array of quoted strings"),
            })?;
            let slot = match (section.as_str(), key) {
                ("determinism", "scopes") => &mut cfg.determinism_scopes,
                ("panic_path", "files") => &mut cfg.panic_path_files,
                ("unsafe_audit", "scopes") => &mut cfg.unsafe_scopes,
                ("doc_refs", "docs") => &mut cfg.doc_files,
                _ => {
                    return Err(ConfigError {
                        line: line_no,
                        message: format!("unknown key `{key}` in section `[{section}]`"),
                    });
                }
            };
            slot.extend(items);
        }
        Ok(cfg)
    }
}

/// Drop a `#` comment, respecting quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `[ "a", "b", ]` (trailing comma fine) into its strings.
fn parse_string_array(s: &str) -> Option<Vec<String>> {
    let inner = s.trim().strip_prefix('[')?.rsplit_once(']')?.0;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let p = part.trim();
        if p.is_empty() {
            continue;
        }
        out.push(p.strip_prefix('"')?.strip_suffix('"')?.to_string());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiline_arrays_comments_and_trailing_commas_parse() {
        let text = "# baseline\n[determinism]\nscopes = [\n    \"crates/opaque/src\", # report-shaping\n    \"crates/pathsearch/src\",\n]\n\n[doc_refs]\ndocs = [\"docs/scaling.md\"]\n";
        let cfg = Config::parse(text).unwrap();
        assert_eq!(cfg.determinism_scopes, vec!["crates/opaque/src", "crates/pathsearch/src"]);
        assert_eq!(cfg.doc_files, vec!["docs/scaling.md"]);
        assert!(cfg.panic_path_files.is_empty());
    }

    #[test]
    fn unknown_section_and_key_are_errors() {
        assert!(Config::parse("[determinsm]\nscopes = []\n").is_err());
        assert!(Config::parse("[determinism]\nscope = [\"x\"]\n").is_err());
    }

    #[test]
    fn unterminated_array_is_an_error() {
        let err = Config::parse("[determinism]\nscopes = [\n  \"a\",\n").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn hash_inside_a_quoted_string_is_not_a_comment() {
        let cfg = Config::parse("[doc_refs]\ndocs = [\"docs/a#b.md\"]\n").unwrap();
        assert_eq!(cfg.doc_files, vec!["docs/a#b.md"]);
    }

    #[test]
    fn default_scopes_the_four_report_affecting_crates() {
        let d = Config::default();
        assert_eq!(d.determinism_scopes.len(), 4);
        assert!(d.panic_path_files.iter().all(|f| f.ends_with(".rs")));
    }
}
