//! A minimal readiness reactor over poll(2).
//!
//! The build is offline and dependency-free, so instead of mio/libc this
//! module issues the `poll` syscall directly (one `asm!` instruction on
//! x86_64 Linux) against `#[repr(C)]` pollfd structs. The server runs
//! level-triggered: each loop iteration rebuilds the pollfd slice from
//! live connections — O(conns) per tick, which is fine at the fleet
//! sizes the load harness drives over loopback.
//!
//! On any other platform the [`poll`] shim sleeps briefly and reports
//! every fd ready. That is safe, not just a stub: all sockets are
//! non-blocking and every read/write path handles `WouldBlock`, so
//! spurious readiness only costs a syscall — correctness never depends
//! on the poller's verdict.

use std::io;
use std::os::fd::RawFd;

/// Readable readiness (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writable readiness (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition (`POLLERR`, revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (`POLLHUP`, revents only).
pub const POLLHUP: i16 = 0x010;

/// Mirror of the kernel's `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// File descriptor to watch.
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Kernel-reported events; cleared before each poll.
    pub revents: i16,
}

impl PollFd {
    /// Watch `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd { fd, events, revents: 0 }
    }

    /// The kernel reported the fd readable (or in a state — error/hangup —
    /// where a read is needed to observe it).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP) != 0
    }

    /// The kernel reported the fd writable (or errored; the write
    /// surfaces the error).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
    }
}

/// Wait up to `timeout_ms` for readiness on `fds`; returns how many
/// entries have non-zero `revents`.
///
/// # Errors
/// The kernel's errno as an [`io::Error`] (EINTR included — callers
/// treat it like a zero-ready timeout and loop).
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // x86_64 syscall 7 = poll(struct pollfd *fds, nfds_t nfds, int timeout).
    let ret: isize;
    // SAFETY: this is a raw `poll(2)` invocation, and every part of the
    // kernel's contract is discharged locally. (1) `rdi` carries
    // `fds.as_mut_ptr()`, which points at `fds.len()` (`rsi`) contiguous,
    // initialized `PollFd`s; `PollFd` is `#[repr(C)]` with the exact
    // field order/widths of the kernel's `struct pollfd`, so the kernel
    // reads `fd`/`events` and writes `revents` entirely within the
    // slice's allocation, which the `&mut [PollFd]` borrow keeps alive
    // and exclusive for the whole (blocking) call. (2) `poll` only ever
    // writes `revents` — it cannot produce a bit pattern that is invalid
    // for `i16`, so no `PollFd` is left in an invalid state on any path,
    // EINTR included. (3) The clobber list matches the syscall ABI:
    // `rcx`/`r11` are declared clobbered (the kernel overwrites them
    // with rip/rflags), `rax` is the in/out return register, and
    // `options(nostack)` holds because the instruction touches no stack
    // memory. The non-Linux/non-x86_64 build never reaches this block —
    // it uses the sleep-and-assume-ready fallback below, which is sound
    // because all sockets are non-blocking and spurious readiness only
    // costs a `WouldBlock` (see the module docs).
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 7isize => ret,
            in("rdi") fds.as_mut_ptr(),
            in("rsi") fds.len(),
            in("rdx") timeout_ms as isize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    if ret < 0 { Err(io::Error::from_raw_os_error(-ret as i32)) } else { Ok(ret as usize) }
}

/// Portable fallback: sleep a slice of the timeout, then report every fd
/// ready for what it asked. See the module docs for why this is sound.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    if timeout_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(timeout_ms.min(5) as u64));
    }
    for fd in fds.iter_mut() {
        fd.revents = fd.events;
    }
    Ok(fds.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn pending_connection_marks_listener_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        // The connect may still be in flight; give the kernel a moment.
        let mut ready = 0;
        for _ in 0..100 {
            ready = poll(&mut fds, 50).unwrap();
            if ready > 0 {
                break;
            }
        }
        assert_eq!(ready, 1);
        assert!(fds[0].readable());
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn idle_socket_times_out_with_zero_ready() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = TcpStream::connect(addr).unwrap();
        let (_accepted, _) = listener.accept().unwrap();
        // Nothing written yet: the client socket has no readable data.
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        let ready = poll(&mut fds, 20).unwrap();
        assert_eq!(ready, 0);
        assert_eq!(fds[0].revents, 0);
    }

    #[test]
    fn written_bytes_mark_the_peer_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        let mut fds = [PollFd::new(accepted.as_raw_fd(), POLLIN | POLLOUT)];
        let mut readable = false;
        for _ in 0..100 {
            poll(&mut fds, 50).unwrap();
            if fds[0].readable() {
                readable = true;
                break;
            }
            fds[0].revents = 0;
        }
        assert!(readable, "4 written bytes never became readable");
        assert!(fds[0].writable(), "a fresh socket should accept writes");
    }
}
