//! Quickstart: protect one directions query with OPAQUE.
//!
//! Reproduces the paper's motivating scenario (§II): Alice wants directions
//! from her home to a clinic without the directions-search server learning
//! that *she* is going *there*.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use opaque::{
    ClientId, ClientRequest, DirectionsServer, FakeSelection, ObfuscationMode, Obfuscator,
    OpaqueSystem, PathQuery, ProtectionSettings,
};
use pathsearch::SharingPolicy;
use roadnet::generators::{GridConfig, grid_network};
use roadnet::{Point, SpatialIndex};

fn main() {
    // A 30×30-block city grid stands in for the TIGER/Line map.
    let map = grid_network(&GridConfig { width: 30, height: 30, seed: 2009, ..Default::default() })
        .expect("generator produces a valid network");
    let index = SpatialIndex::build(&map);

    // Alice's home and the clinic, by coordinate → nearest road junction.
    let home = index.nearest(Point::new(3.0, 4.0));
    let clinic = index.nearest(Point::new(25.0, 22.0));
    println!("Alice's home is node {home}, the clinic is node {clinic}.");

    // Assemble the OPAQUE deployment: trusted obfuscator + semi-trusted
    // directions-search server (Figure 5).
    let obfuscator = Obfuscator::new(map.clone(), FakeSelection::default_ring(), 42);
    let server = DirectionsServer::new(map.clone(), SharingPolicy::PerSource);
    let mut system = OpaqueSystem::new(obfuscator, server);
    system.verify_results = true;

    // Alice asks for 3 candidate sources × 3 candidate destinations: the
    // server can pin her true query with probability at most 1/9.
    let request = ClientRequest::new(
        ClientId(1),
        PathQuery::new(home, clinic),
        ProtectionSettings::new(3, 3).expect("both sizes >= 1"),
    );

    let (results, report) = system
        .process_batch(&[request], ObfuscationMode::Independent)
        .expect("pipeline succeeds on a connected map");

    let path = &results[0].path;
    println!(
        "Delivered: {} hops, network distance {:.2} — exactly the shortest path.",
        path.num_edges(),
        path.distance()
    );
    let direct = pathsearch::shortest_path(&map, home, clinic).expect("connected");
    assert_eq!(path.distance(), direct.distance());

    println!(
        "The server evaluated {} (source, destination) pairs and settled {} nodes,",
        report.total_pairs, report.server_settled
    );
    println!(
        "but can only guess Alice's true query with probability {:.4} (Definition 2).",
        report.per_client_breach[0].1
    );
    println!(
        "Obfuscation added {} fake endpoints; candidate/delivered volume ratio: {:.1}x.",
        report.fakes_added,
        report.redundancy_ratio()
    );
}
