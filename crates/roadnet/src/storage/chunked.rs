//! Chunk-paged CSR: adjacency spilled to a backing file, served through a
//! real LRU chunk cache.
//!
//! [`PagedGraph`](super::PagedGraph) *simulates* CCAM I/O costs while the
//! arcs stay in memory — the right tool for measuring fault counts on
//! city-scale maps. Continent-scale maps (10⁶ nodes, §V's server-cost
//! setting) also need the *capacity* story: a map larger than RAM must
//! stay servable. [`ChunkedCsr`] provides it by writing the CSR arc array
//! to disk in fixed-size chunks at build time and faulting chunks back in
//! on demand:
//!
//! * in memory: the `n + 1` CSR offsets, node coordinates, and an exact-LRU
//!   cache of decoded chunks (capacity fixed in chunks, so the resident
//!   set is bounded regardless of map size);
//! * on disk: the arc records — 12 bytes each (`u32` head + `f64` weight,
//!   little-endian) — in node order, exactly the CCAM clustering premise
//!   that a node's arcs are contiguous.
//!
//! The store implements [`GraphView`], so every search algorithm runs
//! against it unchanged; [`ChunkedCsr::io_stats`] reports chunk accesses,
//! faults, and evictions through the same [`IoStats`] counters the
//! simulated layer uses. Arc enumeration holds the internal cache borrow
//! while invoking the callback, so `for_each_arc` callbacks must not
//! re-enter the same `ChunkedCsr` (no search in this workspace does).

use super::lru::{IoStats, LruBuffer};
use crate::error::Result;
use crate::geo::Point;
use crate::graph::{GraphView, RoadNetwork};
use crate::ids::NodeId;
use std::cell::RefCell;
use std::collections::HashMap;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Bytes per on-disk arc record: `u32` head + `f64` weight.
const RECORD_BYTES: usize = 12;

/// Sizing knobs for [`ChunkedCsr`].
#[derive(Clone, Copy, Debug)]
pub struct ChunkConfig {
    /// Arc records per chunk (≥ 1). Default 4096 ≈ 48 KiB chunks.
    pub arcs_per_chunk: usize,
    /// Chunks held in memory (≥ 1). Default 64, bounding the resident arc
    /// set to ~3 MiB regardless of map size.
    pub cached_chunks: usize,
}

impl Default for ChunkConfig {
    fn default() -> Self {
        ChunkConfig { arcs_per_chunk: 4096, cached_chunks: 64 }
    }
}

/// Decoded chunks currently resident, with exact-LRU recency.
struct ChunkCache {
    lru: LruBuffer,
    data: HashMap<u32, Vec<(u32, f64)>>,
}

/// A road network whose arc array lives in a backing file, paged in
/// chunk-by-chunk. See the [storage module docs](super).
pub struct ChunkedCsr {
    offsets: Vec<u64>,
    points: Vec<Point>,
    symmetric: bool,
    arcs_per_chunk: usize,
    num_arcs: u64,
    file: RefCell<std::fs::File>,
    cache: RefCell<ChunkCache>,
    path: PathBuf,
    owns_file: bool,
}

impl ChunkedCsr {
    /// Spill `g`'s arc array to a new backing file at `path` and return a
    /// store serving it. The file is overwritten if present and is left on
    /// disk when the store drops (use [`ChunkedCsr::spill_temp`] for a
    /// self-cleaning store).
    ///
    /// # Errors
    /// Propagates I/O errors from creating or writing the backing file.
    pub fn spill(g: &RoadNetwork, path: &Path, cfg: ChunkConfig) -> Result<Self> {
        Self::spill_inner(g, path.to_path_buf(), cfg, false)
    }

    /// [`ChunkedCsr::spill`] into a uniquely named file under the system
    /// temp directory, removed when the store drops.
    ///
    /// # Errors
    /// Propagates I/O errors from creating or writing the backing file.
    pub fn spill_temp(g: &RoadNetwork, cfg: ChunkConfig) -> Result<Self> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = format!(
            "roadnet_chunked_{}_{}.csr",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        Self::spill_inner(g, std::env::temp_dir().join(unique), cfg, true)
    }

    fn spill_inner(g: &RoadNetwork, path: PathBuf, cfg: ChunkConfig, owns: bool) -> Result<Self> {
        assert!(cfg.arcs_per_chunk >= 1, "chunks must hold at least one arc");
        assert!(cfg.cached_chunks >= 1, "cache must hold at least one chunk");
        let n = g.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut writer = BufWriter::new(std::fs::File::create(&path)?);
        let mut written = 0u64;
        let mut record = [0u8; RECORD_BYTES];
        for node in g.nodes() {
            offsets.push(written);
            for a in g.arcs(node) {
                record[..4].copy_from_slice(&a.to.0.to_le_bytes());
                record[4..].copy_from_slice(&a.weight.to_le_bytes());
                writer.write_all(&record)?;
                written += 1;
            }
        }
        offsets.push(written);
        writer.flush()?;
        drop(writer);
        let file = std::fs::File::open(&path)?;
        Ok(ChunkedCsr {
            offsets,
            points: g.nodes().map(|node| g.point(node)).collect(),
            symmetric: g.is_symmetric(),
            arcs_per_chunk: cfg.arcs_per_chunk,
            num_arcs: written,
            file: RefCell::new(file),
            cache: RefCell::new(ChunkCache {
                lru: LruBuffer::new(cfg.cached_chunks),
                data: HashMap::with_capacity(cfg.cached_chunks),
            }),
            path,
            owns_file: owns,
        })
    }

    /// Total arcs on disk.
    pub fn num_arcs(&self) -> u64 {
        self.num_arcs
    }

    /// Number of chunks the arc array spans.
    pub fn num_chunks(&self) -> usize {
        (self.num_arcs as usize).div_ceil(self.arcs_per_chunk).max(1)
    }

    /// Configured arcs per chunk.
    pub fn arcs_per_chunk(&self) -> usize {
        self.arcs_per_chunk
    }

    /// Backing file location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Chunk-level I/O counters accumulated so far: each fault is one real
    /// backing-file read of one chunk.
    pub fn io_stats(&self) -> IoStats {
        self.cache.borrow().lru.stats()
    }

    /// Zero the counters, keeping resident chunks (warm cache).
    pub fn reset_io_stats(&self) {
        self.cache.borrow_mut().lru.reset_stats();
    }

    /// Drop every resident chunk and zero the counters (cold cache).
    pub fn clear_cache(&self) {
        let mut c = self.cache.borrow_mut();
        c.lru.clear();
        c.data.clear();
    }

    /// Bytes of arc data currently resident.
    pub fn resident_bytes(&self) -> usize {
        // lint: allow(hash-iter) — a sum over all resident chunks;
        // addition over usize is commutative, so order cannot reach the
        // reported byte count.
        self.cache.borrow().data.values().map(|v| v.len() * RECORD_BYTES).sum()
    }

    /// Make `chunk` resident, reading it from the backing file on a fault.
    fn ensure_resident(&self, cache: &mut ChunkCache, chunk: u32) {
        // The LRU decides residency; on eviction the victim's decoded data
        // must be dropped too, so capture it before touching.
        if !cache.lru.contains(chunk) && cache.lru.resident() == cache.lru.capacity() {
            if let Some(&victim) = cache.lru.lru_order().last() {
                cache.data.remove(&victim);
            }
        }
        if !cache.lru.touch(chunk) {
            return;
        }
        let start_arc = chunk as u64 * self.arcs_per_chunk as u64;
        let arcs = (self.num_arcs - start_arc).min(self.arcs_per_chunk as u64) as usize;
        let mut raw = vec![0u8; arcs * RECORD_BYTES];
        {
            let mut f = self.file.borrow_mut();
            f.seek(SeekFrom::Start(start_arc * RECORD_BYTES as u64)).expect("backing file seek");
            f.read_exact(&mut raw).expect("backing file read");
        }
        let decoded = raw
            .chunks_exact(RECORD_BYTES)
            .map(|r| {
                let to = u32::from_le_bytes(r[..4].try_into().expect("4 bytes"));
                let w = f64::from_le_bytes(r[4..].try_into().expect("8 bytes"));
                (to, w)
            })
            .collect();
        cache.data.insert(chunk, decoded);
    }
}

impl Drop for ChunkedCsr {
    fn drop(&mut self) {
        if self.owns_file {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl GraphView for ChunkedCsr {
    fn num_nodes(&self) -> usize {
        self.points.len()
    }

    fn point(&self, n: NodeId) -> Point {
        // Coordinates are part of the in-memory directory, like
        // `PagedGraph`: no chunk touch.
        self.points[n.index()]
    }

    fn for_each_arc(&self, n: NodeId, f: &mut dyn FnMut(NodeId, f64)) {
        let start = self.offsets[n.index()];
        let end = self.offsets[n.index() + 1];
        let apc = self.arcs_per_chunk as u64;
        let mut cache = self.cache.borrow_mut();
        let mut i = start;
        while i < end {
            let chunk = (i / apc) as u32;
            self.ensure_resident(&mut cache, chunk);
            let data = &cache.data[&chunk];
            let lo = (i - chunk as u64 * apc) as usize;
            let hi = ((end - chunk as u64 * apc) as usize).min(data.len());
            for &(to, w) in &data[lo..hi] {
                f(NodeId(to), w);
            }
            i += (hi - lo) as u64;
        }
    }

    fn is_symmetric(&self) -> bool {
        self.symmetric
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GridConfig, grid_network};

    fn net() -> RoadNetwork {
        grid_network(&GridConfig { width: 14, height: 11, seed: 9, ..Default::default() }).unwrap()
    }

    fn tiny_chunks() -> ChunkConfig {
        // Force many chunks and a small cache so eviction paths run.
        ChunkConfig { arcs_per_chunk: 16, cached_chunks: 3 }
    }

    #[test]
    fn serves_arcs_identical_to_the_in_memory_network() {
        let g = net();
        let c = ChunkedCsr::spill_temp(&g, tiny_chunks()).unwrap();
        assert_eq!(c.num_nodes(), g.num_nodes());
        assert_eq!(c.num_arcs(), g.num_arcs() as u64);
        assert!(c.is_symmetric());
        for n in g.nodes() {
            assert_eq!(c.point(n), g.point(n));
            let mut via_chunks = Vec::new();
            c.for_each_arc(n, &mut |to, w| via_chunks.push((to, w)));
            let direct: Vec<(NodeId, f64)> = g.arcs(n).iter().map(|a| (a.to, a.weight)).collect();
            assert_eq!(via_chunks, direct, "node {n}");
        }
    }

    #[test]
    fn faults_are_counted_and_bounded_by_residency() {
        let g = net();
        let c = ChunkedCsr::spill_temp(&g, tiny_chunks()).unwrap();
        for n in g.nodes() {
            c.for_each_arc(n, &mut |_, _| {});
        }
        let s = c.io_stats();
        assert!(s.faults >= c.num_chunks() as u64, "every chunk read at least once");
        assert!(s.accesses > s.faults, "sequential scan re-touches resident chunks");
        assert!(c.resident_bytes() <= 3 * 16 * RECORD_BYTES);
        // A second sequential pass with a big-enough cache never faults.
        let warm =
            ChunkedCsr::spill_temp(&g, ChunkConfig { arcs_per_chunk: 16, cached_chunks: 4096 })
                .unwrap();
        for n in g.nodes() {
            warm.for_each_arc(n, &mut |_, _| {});
        }
        let first = warm.io_stats().faults;
        assert_eq!(first, warm.num_chunks() as u64);
        for n in g.nodes() {
            warm.for_each_arc(n, &mut |_, _| {});
        }
        assert_eq!(warm.io_stats().faults, first, "warm cache serves pass 2");
    }

    #[test]
    fn clear_and_reset_behave() {
        let g = net();
        let c = ChunkedCsr::spill_temp(&g, tiny_chunks()).unwrap();
        c.for_each_arc(NodeId(0), &mut |_, _| {});
        c.reset_io_stats();
        c.for_each_arc(NodeId(0), &mut |_, _| {});
        assert_eq!(c.io_stats().faults, 0, "warm cache after stats reset");
        c.clear_cache();
        assert_eq!(c.resident_bytes(), 0);
        c.for_each_arc(NodeId(0), &mut |_, _| {});
        assert_eq!(c.io_stats().faults, 1, "cold cache after clear");
    }

    #[test]
    fn searches_run_unchanged_over_the_chunked_store() {
        let g = net();
        let c = ChunkedCsr::spill_temp(&g, tiny_chunks()).unwrap();
        // Hand-rolled Dijkstra would be overkill here; adjacency equality
        // (test above) plus a spot check that multi-chunk nodes stitch
        // correctly across the boundary is what this layer owes.
        let boundary = NodeId::from_index(
            (0..g.num_nodes())
                .find(|&i| {
                    let (s, e) = (c.offsets[i], c.offsets[i + 1]);
                    s / 16 != (e.max(1) - 1) / 16 && e > s
                })
                .expect("some node spans a 16-arc chunk boundary"),
        );
        let mut via_chunks = Vec::new();
        c.for_each_arc(boundary, &mut |to, w| via_chunks.push((to, w)));
        let direct: Vec<(NodeId, f64)> =
            g.arcs(boundary).iter().map(|a| (a.to, a.weight)).collect();
        assert_eq!(via_chunks, direct);
    }

    #[test]
    fn spill_to_explicit_path_leaves_the_file() {
        let g = net();
        let dir = std::env::temp_dir().join("roadnet_chunked_explicit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.csr");
        {
            let c = ChunkedCsr::spill(&g, &path, ChunkConfig::default()).unwrap();
            assert_eq!(c.path(), path.as_path());
        }
        assert!(path.exists(), "explicit spill files persist past drop");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            g.num_arcs() as u64 * RECORD_BYTES as u64
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn temp_spill_removes_its_file_on_drop() {
        let g = net();
        let path = {
            let c = ChunkedCsr::spill_temp(&g, ChunkConfig::default()).unwrap();
            c.path().to_path_buf()
        };
        assert!(!path.exists(), "temp spill cleans up after itself");
    }
}
