//! Per-node plausibility weights — synthetic "population density".
//!
//! The background-knowledge adversary of §II consults public information
//! (voter rolls, yellow pages) to judge how plausible each endpoint is.
//! Real registries are unavailable offline, so experiments use a synthetic
//! density surface: a mixture of Gaussian population centres over the map,
//! plus a uniform floor so no node is strictly impossible. The same weights
//! drive the obfuscator's [`opaque::FakeSelection::Weighted`] strategy and
//! the adversary's prior — the interesting experiments give the two sides
//! different knowledge.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::{Point, RoadNetwork};

/// Parameters for [`population_weights`].
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PopulationConfig {
    /// Number of Gaussian population centres.
    pub centres: usize,
    /// Standard deviation of each centre, as a fraction of the map diagonal.
    pub sigma: f64,
    /// Uniform floor added to every node (relative to a centre's peak of
    /// 1.0) so the support is the whole map.
    pub floor: f64,
    /// RNG seed for centre placement and peak heights.
    pub seed: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig { centres: 5, sigma: 0.08, floor: 0.02, seed: 0 }
    }
}

/// Synthesize one plausibility weight per node of `map`.
pub fn population_weights(map: &RoadNetwork, cfg: &PopulationConfig) -> Vec<f64> {
    assert!(cfg.centres >= 1, "need at least one population centre");
    assert!(cfg.sigma > 0.0, "sigma must be positive");
    assert!(cfg.floor >= 0.0, "floor must be non-negative");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x706f_7075); // "popu"
    let bb = map.bbox();
    let sigma = cfg.sigma * bb.diagonal();

    let centres: Vec<(Point, f64)> = (0..cfg.centres)
        .map(|_| {
            let p =
                Point::new(rng.gen_range(bb.min.x..=bb.max.x), rng.gen_range(bb.min.y..=bb.max.y));
            let peak = rng.gen_range(0.5..1.0);
            (p, peak)
        })
        .collect();

    map.points()
        .iter()
        .map(|&p| {
            let mut w = cfg.floor;
            for &(c, peak) in &centres {
                let d2 = p.distance_sq(c);
                w += peak * (-d2 / (2.0 * sigma * sigma)).exp();
            }
            w
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::generators::{GridConfig, grid_network};

    fn map() -> RoadNetwork {
        grid_network(&GridConfig { width: 20, height: 20, seed: 4, ..Default::default() }).unwrap()
    }

    #[test]
    fn one_positive_weight_per_node() {
        let g = map();
        let w = population_weights(&g, &PopulationConfig::default());
        assert_eq!(w.len(), g.num_nodes());
        assert!(w.iter().all(|&x| x > 0.0), "floor keeps all weights positive");
    }

    #[test]
    fn weights_are_nonuniform() {
        let g = map();
        let w = population_weights(&g, &PopulationConfig::default());
        let max = w.iter().copied().fold(f64::MIN, f64::max);
        let min = w.iter().copied().fold(f64::MAX, f64::min);
        assert!(max / min > 3.0, "density surface too flat: {min}..{max}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = map();
        let a = population_weights(&g, &PopulationConfig { seed: 9, ..Default::default() });
        let b = population_weights(&g, &PopulationConfig { seed: 9, ..Default::default() });
        let c = population_weights(&g, &PopulationConfig { seed: 10, ..Default::default() });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_floor_is_allowed() {
        let g = map();
        let w = population_weights(&g, &PopulationConfig { floor: 0.0, ..Default::default() });
        assert!(w.iter().all(|&x| x >= 0.0));
        assert!(w.iter().any(|&x| x > 0.0));
    }
}
