//! E2 — location-privacy technique comparison (Figure 2, §II).
//!
//! The paper argues qualitatively that landmarks and cloaking return
//! irrelevant paths, naive fake queries are exact but wasteful, and OPAQUE
//! is exact *and* efficient. This experiment measures all five techniques
//! on the same query population and turns Figure 2 into numbers: service
//! quality (true-path rate), endpoint displacement, server cost, and
//! breach probability.

use crate::setup::{Scale, network_with_index};
use crate::table::{ExperimentTable, f3};
use opaque::{PathQuery, Technique, run_technique};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::NodeId;
use roadnet::generators::NetworkClass;

/// Run E2.
pub fn run(scale: &Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E2",
        "privacy technique comparison",
        "Figure 2(a-d) / §II",
        &[
            "technique",
            "true-path rate",
            "mean displacement",
            "pairs/query",
            "settled/query",
            "breach prob",
        ],
    );
    let (g, idx) = network_with_index(NetworkClass::Grid, scale);
    let n = g.num_nodes() as u32;
    let mut rng = StdRng::seed_from_u64(0xE2);
    let queries: Vec<PathQuery> = (0..scale.queries)
        .map(|_| {
            loop {
                let s = NodeId(rng.gen_range(0..n));
                let d = NodeId(rng.gen_range(0..n));
                if s != d {
                    break PathQuery::new(s, d);
                }
            }
        })
        .collect();

    // Cloaking cell ≈ 4 blocks; landmark set and fake count chosen so the
    // naive baseline matches OPAQUE's 1/9 breach probability.
    let cell = (g.bbox().width() / 10.0).max(1.0);
    let techniques = [
        Technique::Direct,
        Technique::Landmark { num_landmarks: 16 },
        Technique::Cloaking { cell_size: cell },
        Technique::NaiveFakes { num_fakes: 8 },
        Technique::Opaque { f_s: 3, f_t: 3 },
    ];

    for tech in techniques {
        let mut exact = 0usize;
        let mut displacement = 0.0;
        let mut pairs = 0u64;
        let mut settled = 0u64;
        let mut breach = 0.0;
        for (i, q) in queries.iter().enumerate() {
            let r = run_technique(&g, &idx, q, tech, 0xE2 ^ i as u64);
            exact += r.true_path_returned as usize;
            displacement += r.endpoint_displacement;
            pairs += r.pairs_evaluated;
            settled += r.server_settled;
            breach += r.breach_probability;
        }
        let qn = queries.len() as f64;
        t.row(vec![
            tech.name().into(),
            f3(exact as f64 / qn),
            f3(displacement / qn),
            f3(pairs as f64 / qn),
            f3(settled as f64 / qn),
            f3(breach / qn),
        ]);
    }
    t.note("direct: exact result, breach 1.0 — the privacy problem of Figure 2(a)");
    t.note("landmark/cloaking: protected but true-path rate collapses — Figures 2(b,c)");
    t.note("naive-fakes vs opaque at equal breach 1/9: opaque settles fewer nodes — Figure 2(d) vs OPAQUE");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_shape_matches_paper_claims() {
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), 5);
        let by_name = |n: &str| t.rows.iter().find(|r| r[0] == n).unwrap().clone();

        let direct = by_name("direct");
        assert_eq!(direct[1], "1.00");
        assert_eq!(direct[5], "1.00");

        // Landmark almost never returns the true path.
        let landmark = by_name("landmark");
        assert!(landmark[1].parse::<f64>().unwrap() < 0.5);

        // Naive fakes and OPAQUE both always return the true path…
        let naive = by_name("naive-fakes");
        let opq = by_name("opaque");
        assert_eq!(naive[1], "1.00");
        assert_eq!(opq[1], "1.00");
        // …at the same breach probability…
        assert_eq!(naive[5], opq[5]);
        // …but OPAQUE settles fewer nodes (Lemma 1 sharing).
        let naive_settled: f64 = naive[4].parse().unwrap();
        let opq_settled: f64 = opq[4].parse().unwrap();
        assert!(opq_settled < naive_settled, "opaque {opq_settled} vs naive {naive_settled}");
    }
}
