//! Strategy tuning: pick a fake-selection strategy for a deployment.
//!
//! The paper requires the obfuscator to know the road network to pick fake
//! endpoints (§IV) but leaves the policy open. This example evaluates the
//! three implemented strategies on one map against two criteria an operator
//! cares about — server cost (Lemma 1) and resistance to a
//! background-knowledge adversary (§II's public-records attacker) — and
//! prints a recommendation matrix.
//!
//! ```text
//! cargo run --example strategy_tuning
//! ```

use opaque::attack::informed_attack;
use opaque::{ClientId, ClientRequest, FakeSelection, Obfuscator, PathQuery, ProtectionSettings};
use pathsearch::{SharingPolicy, msmd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::NodeId;
use roadnet::generators::{GeometricConfig, random_geometric};
use workload::{PopulationConfig, population_weights};

fn main() {
    let map =
        random_geometric(&GeometricConfig { num_nodes: 2_000, seed: 5, ..Default::default() })
            .expect("valid network");
    // Synthetic population density = the adversary's public records.
    let weights = population_weights(&map, &PopulationConfig::default());
    let n = map.num_nodes() as u32;
    let f = 4u32;
    let queries = 20;
    let mut rng = StdRng::seed_from_u64(5);

    println!("strategy   settled/query   victim posterior   effective anonymity (of {})", f * f);
    let mut rows = Vec::new();
    for strategy in [
        FakeSelection::Uniform,
        FakeSelection::default_ring(),
        FakeSelection::default_network_ring(),
        FakeSelection::Weighted,
    ] {
        let mut ob = Obfuscator::new(map.clone(), strategy, 5).with_weights(weights.clone());
        let mut settled = 0u64;
        let mut posterior = 0.0;
        let mut anonymity = 0.0;
        for _ in 0..queries {
            let (s, t) = loop {
                let s = NodeId(rng.gen_range(0..n));
                let t = NodeId(rng.gen_range(0..n));
                if s != t {
                    break (s, t);
                }
            };
            let req = ClientRequest::new(
                ClientId(0),
                PathQuery::new(s, t),
                ProtectionSettings::new(f, f).expect("valid"),
            );
            let unit = ob.obfuscate_independent(&req).expect("map large enough");
            let r =
                msmd(&map, unit.query.sources(), unit.query.targets(), SharingPolicy::PerSource);
            settled += r.stats.settled;
            let attack = informed_attack(&unit, ClientId(0), &weights);
            posterior += attack.victim_posterior;
            anonymity += attack.effective_anonymity;
        }
        let cost = settled as f64 / queries as f64;
        let post = posterior / queries as f64;
        let anon = anonymity / queries as f64;
        println!("{:<9}  {:>13.0}  {:>17.4}  {:>19.1}", strategy.name(), cost, post, anon);
        rows.push((strategy.name(), cost, post));
    }

    println!();
    let cheapest = rows.iter().min_by(|a, b| a.1.total_cmp(&b.1)).expect("non-empty");
    let most_robust = rows.iter().min_by(|a, b| a.2.total_cmp(&b.2)).expect("non-empty");
    println!("cheapest for the server:            {}", cheapest.0);
    println!("strongest vs informed adversary:    {}", most_robust.0);
    println!();
    println!("Rule of thumb: a ring variant when the threat model is the honest-but-");
    println!("curious server of the paper (`net-ring` if obfuscation-time Dijkstra is");
    println!("affordable, `ring` otherwise); `weighted` when the adversary holds");
    println!("public records; `uniform` only when endpoint spread itself is the");
    println!("requirement.");
}
