//! The experiment suite — one module per paper artifact (see DESIGN.md §3),
//! plus the `lint` pseudo-experiment that trends the workspace's
//! invariant surfaces (unsafe census, allow markers) in the perf artifact.

pub mod e10_scaling;
pub mod e11_intersection;
pub mod e12_batching;
pub mod e13_frontier;
pub mod e14_parallel;
pub mod e15_cache;
pub mod e16_gateway;
pub mod e17_netload;
pub mod e18_partition;
pub mod e19_livemap;
pub mod e1_algorithms;
pub mod e20_continent;
pub mod e2_techniques;
pub mod e3_breach;
pub mod e4_cost_model;
pub mod e5_shared;
pub mod e6_collusion;
pub mod e7_strategies;
pub mod e8_clustering;
pub mod e9_storage;
pub mod lint;

use crate::setup::Scale;
use crate::table::ExperimentTable;

/// All experiment ids, in run order (`lint` last: it audits the tree,
/// not the paper).
pub const ALL_IDS: [&str; 21] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "lint",
];

/// Run one experiment by id.
pub fn run_by_id(id: &str, scale: &Scale) -> Option<ExperimentTable> {
    match id {
        "e1" => Some(e1_algorithms::run(scale)),
        "e2" => Some(e2_techniques::run(scale)),
        "e3" => Some(e3_breach::run(scale)),
        "e4" => Some(e4_cost_model::run(scale)),
        "e5" => Some(e5_shared::run(scale)),
        "e6" => Some(e6_collusion::run(scale)),
        "e7" => Some(e7_strategies::run(scale)),
        "e8" => Some(e8_clustering::run(scale)),
        "e9" => Some(e9_storage::run(scale)),
        "e10" => Some(e10_scaling::run(scale)),
        "e11" => Some(e11_intersection::run(scale)),
        "e12" => Some(e12_batching::run(scale)),
        "e13" => Some(e13_frontier::run(scale)),
        "e14" => Some(e14_parallel::run(scale)),
        "e15" => Some(e15_cache::run(scale)),
        "e16" => Some(e16_gateway::run(scale)),
        "e17" => Some(e17_netload::run(scale)),
        "e18" => Some(e18_partition::run(scale)),
        "e19" => Some(e19_livemap::run(scale)),
        "e20" => Some(e20_continent::run(scale)),
        "lint" => Some(lint::run(scale)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run_by_id("e99", &Scale::quick()).is_none());
    }
}
