//! Nightly-scale stress of the worker-pool execution layer: 10 000
//! obfuscated queries pushed through 8 shards × 8 threads.
//!
//! `#[ignore]`d in quick runs (`cargo test`); CI's `test-threaded` job
//! runs it explicitly with `--ignored`. What it guards:
//!
//! * **no lost or duplicated work** — every batch yields exactly one
//!   [`ClientOutcome`] per request, in request order, and every delivered
//!   client appears exactly once;
//! * **monotone counters** — the fleet's cumulative `trees_grown` (and
//!   the other merged counters) only ever grow, batch over batch: a
//!   worker racing a reset or a double-merged shard would break the
//!   monotone staircase;
//! * **exact global accounting** — after 10k queries the fleet-merged
//!   counters recompose exactly from the per-batch report deltas.

use opaque::{ClientOutcome, DirectionsBackend, ExecutionPolicy, ObfuscationMode, ServiceBuilder};
use roadnet::SpatialIndex;
use roadnet::generators::{GridConfig, grid_network};
use std::collections::HashSet;
use workload::{ProtectionDistribution, QueryDistribution, WorkloadConfig, generate_requests};

const SHARDS: usize = 8;
const THREADS: usize = 8;
const BATCHES: usize = 100;
const BATCH_SIZE: usize = 100; // BATCHES × BATCH_SIZE = 10_000 queries

#[test]
#[ignore = "nightly stress: 10k queries across 8 shards x 8 threads"]
fn ten_thousand_queries_lose_nothing_and_count_monotonically() {
    let g = grid_network(&GridConfig { width: 32, height: 32, seed: 0x57E5, ..Default::default() })
        .expect("valid network");
    let idx = SpatialIndex::build(&g);

    let mut svc = ServiceBuilder::new()
        .map(g.clone())
        .seed(0x57E5)
        .shards(SHARDS)
        .execution_policy(ExecutionPolicy::WorkerPool { threads: THREADS })
        // Independent mode: one obfuscated query per request, so the
        // injector queue sees all 100 units of every batch.
        .obfuscation_mode(ObfuscationMode::Independent)
        .build()
        .expect("valid configuration");

    let mut prev_stats = svc.backend().stats();
    assert_eq!(prev_stats.trees_grown, 0);
    let mut delta_settled = 0u64;
    let mut delta_trees = 0u64;

    for batch_no in 0..BATCHES {
        let requests = generate_requests(
            &g,
            &idx,
            &WorkloadConfig {
                num_requests: BATCH_SIZE,
                queries: QueryDistribution::Uniform,
                protection: ProtectionDistribution::Fixed { f_s: 2, f_t: 2 },
                seed: batch_no as u64,
            },
        );
        let response = svc.process_batch(&requests).expect("batch succeeds");

        // One outcome per request, in request order — nothing lost,
        // nothing duplicated, regardless of which worker served what.
        assert_eq!(response.outcomes.len(), requests.len(), "batch {batch_no}");
        for (slot, (request, (client, _))) in requests.iter().zip(&response.outcomes).enumerate() {
            assert_eq!(request.client, *client, "batch {batch_no} slot {slot}");
        }
        let delivered: Vec<_> = response
            .outcomes
            .iter()
            .filter(|(_, o)| *o == ClientOutcome::Delivered)
            .map(|(c, _)| *c)
            .collect();
        assert_eq!(
            delivered.len(),
            response.results.len(),
            "batch {batch_no}: every Delivered outcome has exactly one result"
        );
        let unique: HashSet<_> = response.results.iter().map(|r| r.client).collect();
        assert_eq!(unique.len(), response.results.len(), "batch {batch_no}: duplicate delivery");
        for (result, client) in response.results.iter().zip(&delivered) {
            assert_eq!(result.client, *client, "batch {batch_no}: delivery order");
        }

        // Monotone staircase: cumulative fleet counters only grow, and
        // they grow by exactly this batch's reported delta.
        let stats = svc.backend().stats();
        assert!(
            stats.trees_grown > prev_stats.trees_grown,
            "batch {batch_no}: trees_grown must strictly grow ({} -> {})",
            prev_stats.trees_grown,
            stats.trees_grown
        );
        assert!(stats.search.settled >= prev_stats.search.settled, "batch {batch_no}");
        assert!(stats.pairs_evaluated >= prev_stats.pairs_evaluated, "batch {batch_no}");
        let step = stats.delta_since(&prev_stats);
        assert_eq!(step.search.settled, response.report.server_settled, "batch {batch_no}");
        assert_eq!(step.trees_grown, response.report.server_trees_grown, "batch {batch_no}");
        delta_settled += response.report.server_settled;
        delta_trees += response.report.server_trees_grown;
        prev_stats = stats;
    }

    // Global accounting: 10k obfuscated queries served, and the per-batch
    // deltas recompose exactly to the cumulative fleet counters.
    let total = svc.backend().stats();
    assert_eq!(total.obfuscated_queries, (BATCHES * BATCH_SIZE) as u64);
    assert_eq!(total.search.settled, delta_settled);
    assert_eq!(total.trees_grown, delta_trees);
    // Work actually spread beyond one shard: with a shared injector and
    // 100-unit batches, a single shard hogging everything means the pool
    // never ran.
    let busy_shards = svc.backend().load_per_shard().iter().filter(|&&p| p > 0).count();
    assert!(
        busy_shards > 1,
        "work never left the first shard: {:?}",
        svc.backend().load_per_shard()
    );
}
