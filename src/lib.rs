//! # opaque-repro — umbrella crate for the OPAQUE reproduction
//!
//! Re-exports the workspace crates so examples and integration tests can
//! use one coherent namespace. See the individual crates for full
//! documentation:
//!
//! * [`roadnet`] — road-network substrate (graph, generators, CCAM-style
//!   paged storage, spatial index);
//! * [`pathsearch`] — Dijkstra / A* / bidirectional / multi-destination /
//!   MSMD search with cost instrumentation;
//! * [`opaque`] — the paper's contribution: obfuscated path queries, the
//!   obfuscator, server, filter, attacks, and baselines;
//! * [`workload`] — synthetic client workloads and plausibility surfaces.

pub use opaque;
pub use pathsearch;
pub use roadnet;
pub use workload;

/// The README's code blocks, compiled and run as doctests so the
/// quick-start can never rot. (Hidden from rustdoc output; `cargo test`
/// executes it.)
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;
