//! The road-network graph model `G(N, E)` of §III-A.
//!
//! Road segments are edges with non-negative weights (travel distance, time,
//! or toll); endpoints are nodes with planar coordinates. The network is
//! stored in compressed sparse row (CSR) form: one contiguous arc array plus
//! per-node offsets, which keeps adjacency scans cache-friendly — the hot
//! loop of every search algorithm in `pathsearch`.
//!
//! Networks are undirected by default (each road segment yields two arcs
//! sharing an [`EdgeId`]); directed networks are supported for one-way
//! streets.

use crate::error::{Result, RoadNetError};
use crate::geo::{BoundingBox, Point};
use crate::ids::{EdgeId, NodeId};

/// One directed adjacency entry: `to` is reachable at cost `weight` via the
/// underlying undirected [`EdgeId`] `edge`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Arc {
    /// Head node reached by following the arc.
    pub to: NodeId,
    /// Traversal cost.
    pub weight: f64,
    /// The undirected segment this arc belongs to.
    pub edge: EdgeId,
}

/// An undirected road segment as supplied to the builder.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Edge {
    /// One endpoint (orientation as supplied to the builder).
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Traversal cost, identical in both directions.
    pub weight: f64,
}

/// Read-only view of a graph sufficient for shortest-path search.
///
/// Implemented by [`RoadNetwork`] (pure in-memory traversal) and by
/// [`crate::storage::PagedGraph`] (traversal through a simulated disk-page
/// buffer that counts I/O). Search algorithms are generic over this trait so
/// the same code path is measured with and without storage costs.
pub trait GraphView {
    /// Number of nodes; node ids are dense in `0..num_nodes()`.
    fn num_nodes(&self) -> usize;

    /// Coordinate of node `n`.
    fn point(&self, n: NodeId) -> Point;

    /// Invoke `f(to, weight)` for every outgoing arc of `n`.
    fn for_each_arc(&self, n: NodeId, f: &mut dyn FnMut(NodeId, f64));

    /// True when every arc has an equal-weight reverse arc (undirected
    /// networks). Algorithms that swap source/target roles (bidirectional
    /// search termination shortcuts, MSMD transposition) require this; the
    /// conservative default is `false`, and [`RoadNetwork`] reports its
    /// build mode.
    fn is_symmetric(&self) -> bool {
        false
    }
}

impl<G: GraphView + ?Sized> GraphView for &G {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }
    fn point(&self, n: NodeId) -> Point {
        (**self).point(n)
    }
    fn for_each_arc(&self, n: NodeId, f: &mut dyn FnMut(NodeId, f64)) {
        (**self).for_each_arc(n, f)
    }
    fn is_symmetric(&self) -> bool {
        (**self).is_symmetric()
    }
}

/// Shared-ownership views: a fleet of servers can hold one map via `Arc`
/// instead of a deep copy each.
impl<G: GraphView + ?Sized> GraphView for std::sync::Arc<G> {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }
    fn point(&self, n: NodeId) -> Point {
        (**self).point(n)
    }
    fn for_each_arc(&self, n: NodeId, f: &mut dyn FnMut(NodeId, f64)) {
        (**self).for_each_arc(n, f)
    }
    fn is_symmetric(&self) -> bool {
        (**self).is_symmetric()
    }
}

/// Builder accumulating nodes and edges, validating eagerly, and producing a
/// CSR [`RoadNetwork`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    points: Vec<Point>,
    edges: Vec<Edge>,
    directed: bool,
}

impl GraphBuilder {
    /// Start building an undirected network (the common road-network case).
    pub fn new() -> Self {
        GraphBuilder { points: Vec::new(), edges: Vec::new(), directed: false }
    }

    /// Start building a directed network (one-way arcs).
    pub fn directed() -> Self {
        GraphBuilder { points: Vec::new(), edges: Vec::new(), directed: true }
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.points.len()
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add a node at `p`, returning its id.
    pub fn add_node(&mut self, p: Point) -> Result<NodeId> {
        let id = NodeId::from_index(self.points.len());
        if !p.is_finite() {
            return Err(RoadNetError::InvalidCoordinate { node: id });
        }
        self.points.push(p);
        Ok(id)
    }

    /// Reserve capacity for `nodes` nodes and `edges` edges.
    pub fn reserve(&mut self, nodes: usize, edges: usize) {
        self.points.reserve(nodes);
        self.edges.reserve(edges);
    }

    /// Add an edge between existing nodes `a` and `b` with weight `w`.
    ///
    /// In an undirected builder the edge is traversable both ways; in a
    /// directed builder only `a → b`.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, w: f64) -> Result<EdgeId> {
        let n = self.points.len();
        for node in [a, b] {
            if node.index() >= n {
                return Err(RoadNetError::NodeOutOfRange { node, num_nodes: n });
            }
        }
        if a == b {
            return Err(RoadNetError::SelfLoop { node: a });
        }
        if !w.is_finite() || w < 0.0 {
            return Err(RoadNetError::InvalidWeight { from: a, to: b, weight: w });
        }
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(Edge { a, b, weight: w });
        Ok(id)
    }

    /// Convenience: add an edge weighted by the Euclidean distance between
    /// the endpoints scaled by `factor` (≥ 1 keeps the Euclidean heuristic
    /// admissible for A*).
    pub fn add_euclidean_edge(&mut self, a: NodeId, b: NodeId, factor: f64) -> Result<EdgeId> {
        let n = self.points.len();
        for node in [a, b] {
            if node.index() >= n {
                return Err(RoadNetError::NodeOutOfRange { node, num_nodes: n });
            }
        }
        let w = self.points[a.index()].distance(self.points[b.index()]) * factor;
        self.add_edge(a, b, w)
    }

    /// Finalize into a CSR [`RoadNetwork`].
    pub fn build(self) -> Result<RoadNetwork> {
        if self.points.is_empty() {
            return Err(RoadNetError::EmptyNetwork);
        }
        let n = self.points.len();
        let arcs_per_edge = if self.directed { 1 } else { 2 };

        // Counting sort of arcs into CSR order.
        let mut degree = vec![0u32; n];
        for e in &self.edges {
            degree[e.a.index()] += 1;
            if !self.directed {
                degree[e.b.index()] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0u32);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut arcs = vec![
            Arc { to: NodeId(0), weight: 0.0, edge: EdgeId(0) };
            self.edges.len() * arcs_per_edge
        ];
        for (i, e) in self.edges.iter().enumerate() {
            let edge = EdgeId::from_index(i);
            let slot = cursor[e.a.index()] as usize;
            arcs[slot] = Arc { to: e.b, weight: e.weight, edge };
            cursor[e.a.index()] += 1;
            if !self.directed {
                let slot = cursor[e.b.index()] as usize;
                arcs[slot] = Arc { to: e.a, weight: e.weight, edge };
                cursor[e.b.index()] += 1;
            }
        }

        let bbox = BoundingBox::of_points(self.points.iter().copied());
        Ok(RoadNetwork {
            points: self.points,
            offsets,
            arcs,
            edges: self.edges,
            directed: self.directed,
            bbox,
        })
    }
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// A road network in CSR form. Construct via [`GraphBuilder`] or one of the
/// generators in [`crate::generators`]. The topology is fixed after
/// construction; edge weights may change in place via
/// [`RoadNetwork::update_weights`] (live-traffic updates).
#[derive(Clone, Debug)]
pub struct RoadNetwork {
    points: Vec<Point>,
    offsets: Vec<u32>,
    arcs: Vec<Arc>,
    edges: Vec<Edge>,
    directed: bool,
    bbox: BoundingBox,
}

impl RoadNetwork {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.points.len()
    }

    /// Number of undirected edges (road segments) supplied at build time.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of directed arcs (2× edges for undirected networks).
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Whether the network was built as directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Coordinate of node `n`.
    #[inline]
    pub fn point(&self, n: NodeId) -> Point {
        self.points[n.index()]
    }

    /// All node coordinates, indexed by node id.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The original edge list, indexed by [`EdgeId`].
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge record for `e`.
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e.index()]
    }

    /// Outgoing arcs of node `n` as a contiguous slice.
    #[inline]
    pub fn arcs(&self, n: NodeId) -> &[Arc] {
        let lo = self.offsets[n.index()] as usize;
        let hi = self.offsets[n.index() + 1] as usize;
        &self.arcs[lo..hi]
    }

    /// Out-degree of node `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.arcs(n).len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.points.len()).map(NodeId::from_index)
    }

    /// Bounding box of all node coordinates.
    pub fn bbox(&self) -> BoundingBox {
        self.bbox
    }

    /// Mean out-degree.
    pub fn avg_degree(&self) -> f64 {
        self.arcs.len() as f64 / self.points.len() as f64
    }

    /// Straight-line distance between the coordinates of two nodes.
    #[inline]
    pub fn euclidean(&self, a: NodeId, b: NodeId) -> f64 {
        self.point(a).distance(self.point(b))
    }

    /// Check that every arc's weight is at least the Euclidean distance
    /// between its endpoints (within `eps`). When true, the Euclidean
    /// heuristic is admissible for A*.
    pub fn euclidean_admissible(&self, eps: f64) -> bool {
        self.nodes().all(|n| self.arcs(n).iter().all(|a| a.weight + eps >= self.euclidean(n, a.to)))
    }

    /// Component label for every node (labels are dense from 0, assigned in
    /// node-id order of component discovery). For directed networks this is
    /// *weak* connectivity of the underlying undirected structure only when
    /// arcs happen to be symmetric; it treats arcs as one-way.
    pub fn component_labels(&self) -> Vec<u32> {
        let n = self.num_nodes();
        let mut label = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut stack = Vec::new();
        for start in 0..n {
            if label[start] != u32::MAX {
                continue;
            }
            label[start] = next;
            stack.push(NodeId::from_index(start));
            while let Some(u) = stack.pop() {
                for a in self.arcs(u) {
                    if label[a.to.index()] == u32::MAX {
                        label[a.to.index()] = next;
                        stack.push(a.to);
                    }
                }
            }
            next += 1;
        }
        label
    }

    /// Number of connected components (by arc reachability).
    pub fn num_components(&self) -> usize {
        self.component_labels().iter().copied().max().map_or(0, |m| m as usize + 1)
    }

    /// True if every node is reachable from every other (undirected case) /
    /// the arc structure forms one component.
    pub fn is_connected(&self) -> bool {
        self.num_components() <= 1
    }

    /// Restrict to the largest connected component, renumbering nodes
    /// densely. Returns the subnetwork and, for each new node id, the
    /// original node id it came from.
    pub fn largest_component(&self) -> Result<(RoadNetwork, Vec<NodeId>)> {
        let labels = self.component_labels();
        let num = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut sizes = vec![0usize; num];
        for &l in &labels {
            sizes[l as usize] += 1;
        }
        let best = sizes
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| **s)
            .map(|(i, _)| i as u32)
            .ok_or(RoadNetError::EmptyNetwork)?;

        let mut old_of_new = Vec::new();
        let mut new_of_old = vec![u32::MAX; self.num_nodes()];
        for (i, &l) in labels.iter().enumerate() {
            if l == best {
                new_of_old[i] = old_of_new.len() as u32;
                old_of_new.push(NodeId::from_index(i));
            }
        }
        let mut b = if self.directed { GraphBuilder::directed() } else { GraphBuilder::new() };
        b.reserve(old_of_new.len(), self.edges.len());
        for &old in &old_of_new {
            b.add_node(self.point(old))?;
        }
        for e in &self.edges {
            let na = new_of_old[e.a.index()];
            let nb = new_of_old[e.b.index()];
            if na != u32::MAX && nb != u32::MAX {
                b.add_edge(NodeId(na), NodeId(nb), e.weight)?;
            }
        }
        Ok((b.build()?, old_of_new))
    }

    /// Total weight of all edges.
    pub fn total_edge_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Apply live-traffic weight updates in place, keeping the topology
    /// fixed. Returns the edges whose weight actually changed, sorted and
    /// deduplicated — the set a cache layer must invalidate against.
    ///
    /// Entries repeating an edge's current weight are accepted but not
    /// reported: they cannot affect any cached search result. The whole
    /// batch is validated before any weight is written, so an invalid entry
    /// leaves the network untouched.
    ///
    /// # Errors
    /// [`RoadNetError::EdgeOutOfRange`] for an unknown edge id,
    /// [`RoadNetError::InvalidWeight`] for a negative or non-finite weight.
    pub fn update_weights(&mut self, updates: &[(EdgeId, f64)]) -> Result<Vec<EdgeId>> {
        for &(e, w) in updates {
            if e.index() >= self.edges.len() {
                return Err(RoadNetError::EdgeOutOfRange { edge: e, num_edges: self.edges.len() });
            }
            if !w.is_finite() || w < 0.0 {
                let edge = self.edges[e.index()];
                return Err(RoadNetError::InvalidWeight { from: edge.a, to: edge.b, weight: w });
            }
        }
        let mut changed = Vec::new();
        for &(e, w) in updates {
            let rec = self.edges[e.index()];
            if rec.weight == w {
                continue;
            }
            self.edges[e.index()].weight = w;
            // Both CSR arc ranges can carry the edge (one for directed
            // networks); matching on the edge id covers either layout.
            for node in [rec.a, rec.b] {
                let lo = self.offsets[node.index()] as usize;
                let hi = self.offsets[node.index() + 1] as usize;
                for arc in &mut self.arcs[lo..hi] {
                    if arc.edge == e {
                        arc.weight = w;
                    }
                }
            }
            changed.push(e);
        }
        changed.sort_unstable();
        changed.dedup();
        Ok(changed)
    }
}

impl GraphView for RoadNetwork {
    fn num_nodes(&self) -> usize {
        self.num_nodes()
    }

    fn point(&self, n: NodeId) -> Point {
        self.point(n)
    }

    #[inline]
    fn for_each_arc(&self, n: NodeId, f: &mut dyn FnMut(NodeId, f64)) {
        for a in self.arcs(n) {
            f(a.to, a.weight);
        }
    }

    fn is_symmetric(&self) -> bool {
        !self.directed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0)).unwrap();
        let n1 = b.add_node(Point::new(1.0, 0.0)).unwrap();
        let n2 = b.add_node(Point::new(0.0, 1.0)).unwrap();
        b.add_edge(n0, n1, 1.0).unwrap();
        b.add_edge(n1, n2, 2.0).unwrap();
        b.add_edge(n2, n0, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_symmetric_arcs_for_undirected() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.degree(NodeId(0)), 2);
        // Arc 0→1 and 1→0 both exist with the same weight and edge id.
        let fwd = g.arcs(NodeId(0)).iter().find(|a| a.to == NodeId(1)).unwrap();
        let rev = g.arcs(NodeId(1)).iter().find(|a| a.to == NodeId(0)).unwrap();
        assert_eq!(fwd.weight, rev.weight);
        assert_eq!(fwd.edge, rev.edge);
    }

    #[test]
    fn directed_builder_adds_single_arcs() {
        let mut b = GraphBuilder::directed();
        let n0 = b.add_node(Point::new(0.0, 0.0)).unwrap();
        let n1 = b.add_node(Point::new(1.0, 0.0)).unwrap();
        b.add_edge(n0, n1, 3.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_arcs(), 1);
        assert_eq!(g.degree(n0), 1);
        assert_eq!(g.degree(n1), 0);
        assert!(g.is_directed());
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0)).unwrap();
        let n1 = b.add_node(Point::new(1.0, 0.0)).unwrap();
        assert!(matches!(b.add_edge(n0, NodeId(9), 1.0), Err(RoadNetError::NodeOutOfRange { .. })));
        assert!(matches!(b.add_edge(n0, n0, 1.0), Err(RoadNetError::SelfLoop { .. })));
        assert!(matches!(b.add_edge(n0, n1, -2.0), Err(RoadNetError::InvalidWeight { .. })));
        assert!(matches!(b.add_edge(n0, n1, f64::NAN), Err(RoadNetError::InvalidWeight { .. })));
        assert!(matches!(
            b.add_node(Point::new(f64::NAN, 0.0)),
            Err(RoadNetError::InvalidCoordinate { .. })
        ));
        assert!(matches!(GraphBuilder::new().build(), Err(RoadNetError::EmptyNetwork)));
    }

    #[test]
    fn zero_weight_edges_are_allowed() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0)).unwrap();
        let n1 = b.add_node(Point::new(0.0, 0.0)).unwrap();
        assert!(b.add_edge(n0, n1, 0.0).is_ok());
    }

    #[test]
    fn euclidean_edge_weights_scale() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0)).unwrap();
        let n1 = b.add_node(Point::new(3.0, 4.0)).unwrap();
        b.add_euclidean_edge(n0, n1, 1.2).unwrap();
        let g = b.build().unwrap();
        assert!((g.arcs(n0)[0].weight - 6.0).abs() < 1e-12);
        assert!(g.euclidean_admissible(1e-12));
    }

    #[test]
    fn components_and_largest() {
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_node(Point::new(i as f64, 0.0)).unwrap();
        }
        // Component A: {0,1,2}; component B: {3,4}.
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(3), NodeId(4), 1.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_components(), 2);
        assert!(!g.is_connected());
        let (sub, mapping) = g.largest_component().unwrap();
        assert_eq!(sub.num_nodes(), 3);
        assert!(sub.is_connected());
        assert_eq!(mapping, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn bbox_covers_nodes() {
        let g = triangle();
        let bb = g.bbox();
        assert!(bb.contains(Point::new(0.5, 0.5)));
        assert_eq!(bb.width(), 1.0);
        assert_eq!(bb.height(), 1.0);
    }

    #[test]
    fn graph_view_matches_arcs() {
        let g = triangle();
        let mut seen = Vec::new();
        GraphView::for_each_arc(&g, NodeId(1), &mut |to, w| seen.push((to, w)));
        let direct: Vec<(NodeId, f64)> =
            g.arcs(NodeId(1)).iter().map(|a| (a.to, a.weight)).collect();
        assert_eq!(seen, direct);
    }

    #[test]
    fn total_edge_weight_sums() {
        let g = triangle();
        assert!((g.total_edge_weight() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn update_weights_rewrites_both_arc_directions() {
        let mut g = triangle();
        let changed = g.update_weights(&[(EdgeId(0), 5.0)]).unwrap();
        assert_eq!(changed, vec![EdgeId(0)]);
        assert_eq!(g.edge(EdgeId(0)).weight, 5.0);
        let fwd = g.arcs(NodeId(0)).iter().find(|a| a.to == NodeId(1)).unwrap();
        let rev = g.arcs(NodeId(1)).iter().find(|a| a.to == NodeId(0)).unwrap();
        assert_eq!(fwd.weight, 5.0);
        assert_eq!(rev.weight, 5.0);
        // Untouched edges keep their weights.
        assert_eq!(g.edge(EdgeId(1)).weight, 2.0);
        assert!((g.total_edge_weight() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn update_weights_skips_noop_entries_and_dedups() {
        let mut g = triangle();
        // A no-op entry is accepted but not reported as changed; a repeated
        // edge appears once in the affected set.
        let changed =
            g.update_weights(&[(EdgeId(1), 2.0), (EdgeId(2), 9.0), (EdgeId(2), 7.0)]).unwrap();
        assert_eq!(changed, vec![EdgeId(2)]);
        assert_eq!(g.edge(EdgeId(2)).weight, 7.0);
        assert!(g.update_weights(&[]).unwrap().is_empty());
    }

    #[test]
    fn update_weights_rejects_bad_entries_leaving_map_unchanged() {
        let mut g = triangle();
        let before: Vec<f64> = g.edges().iter().map(|e| e.weight).collect();
        assert!(matches!(
            g.update_weights(&[(EdgeId(0), 5.0), (EdgeId(99), 1.0)]),
            Err(RoadNetError::EdgeOutOfRange { .. })
        ));
        assert!(matches!(
            g.update_weights(&[(EdgeId(0), 5.0), (EdgeId(1), -1.0)]),
            Err(RoadNetError::InvalidWeight { .. })
        ));
        assert!(matches!(
            g.update_weights(&[(EdgeId(1), f64::INFINITY)]),
            Err(RoadNetError::InvalidWeight { .. })
        ));
        // Validation happens before any write: edge 0 kept its old weight
        // even though it preceded the bad entry in the batch.
        let after: Vec<f64> = g.edges().iter().map(|e| e.weight).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn update_weights_on_directed_networks_touches_the_single_arc() {
        let mut b = GraphBuilder::directed();
        let n0 = b.add_node(Point::new(0.0, 0.0)).unwrap();
        let n1 = b.add_node(Point::new(1.0, 0.0)).unwrap();
        let e = b.add_edge(n0, n1, 3.0).unwrap();
        let mut g = b.build().unwrap();
        let changed = g.update_weights(&[(e, 8.0)]).unwrap();
        assert_eq!(changed, vec![e]);
        assert_eq!(g.arcs(n0)[0].weight, 8.0);
        assert_eq!(g.degree(n1), 0);
    }
}
