//! The parallel execution layer's headline guarantee, as a property:
//! for random maps, random batches, random obfuscator seeds, and any
//! worker-pool width, `ExecutionPolicy::WorkerPool` produces
//! **byte-identical** batch output to `ExecutionPolicy::Sequential` —
//! the same delivered paths, the same per-client outcomes, the same
//! serialized `BatchReport`, and the same fleet-merged server counters.
//!
//! Parallelism here may only move work between shards; it must never
//! change a single answer or report byte. Each obfuscated query is a pure
//! function of `(map, query, sharing policy)` and the service accounts
//! units in unit order regardless of which worker answered them, so any
//! divergence this test could catch would be a real scheduling leak
//! (results landing in the wrong slot, stats double-counted or lost,
//! order-dependent accounting).

use opaque::{
    ClientId, ClientRequest, ClusteringConfig, DirectionsBackend, ExecutionPolicy, ObfuscationMode,
    PathQuery, ProtectionSettings, ServiceBuilder, ServiceResponse,
};
use proptest::prelude::*;
use roadnet::{GraphBuilder, NodeId, Point, RoadNetwork};

/// Random connected road map: a random spanning tree plus extra random
/// edges (parallel roads allowed), positive weights.
fn arb_map(max_nodes: usize) -> impl Strategy<Value = RoadNetwork> {
    (4..max_nodes)
        .prop_flat_map(|n| {
            let coords = proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), n);
            let parents = proptest::collection::vec(proptest::num::u32::ANY, n - 1);
            let extra = proptest::collection::vec((0..n as u32, 0..n as u32, 1.0f64..3.0), 0..n);
            (coords, parents, extra)
        })
        .prop_map(|(coords, parents, extra)| {
            let mut b = GraphBuilder::new();
            for (x, y) in &coords {
                b.add_node(Point::new(*x, *y)).expect("finite coords");
            }
            let n = coords.len();
            let euclid = |a: usize, c: usize| {
                Point::new(coords[a].0, coords[a].1).distance(Point::new(coords[c].0, coords[c].1))
            };
            for (i, p) in parents.iter().enumerate() {
                let child = i + 1;
                let parent = (*p as usize) % child;
                let w = euclid(parent, child).max(f64::EPSILON) * 1.1;
                b.add_edge(NodeId::from_index(parent), NodeId::from_index(child), w)
                    .expect("valid tree edge");
            }
            for (a, c, factor) in extra {
                let (a, c) = (a as usize % n, c as usize % n);
                if a != c {
                    let w = euclid(a, c).max(f64::EPSILON) * factor;
                    b.add_edge(NodeId::from_index(a), NodeId::from_index(c), w)
                        .expect("valid extra edge");
                }
            }
            b.build().expect("non-empty graph")
        })
}

/// A batch of requests with unique client ids; endpoints and protection
/// demands are arbitrary (including infeasible ones — rejections must be
/// identical across execution policies too).
fn arb_batch(max_requests: usize) -> impl Strategy<Value = Vec<(u32, u32, u32, u32)>> {
    proptest::collection::vec(
        (proptest::num::u32::ANY, proptest::num::u32::ANY, 1u32..5, 1u32..5),
        1..max_requests,
    )
}

fn requests_on(map: &RoadNetwork, raw: &[(u32, u32, u32, u32)]) -> Vec<ClientRequest> {
    let n = map.num_nodes() as u32;
    raw.iter()
        .enumerate()
        .map(|(i, &(s, t, f_s, f_t))| {
            ClientRequest::new(
                ClientId(i as u32),
                PathQuery::new(NodeId(s % n), NodeId(t % n)),
                ProtectionSettings::new(f_s, f_t).expect("nonzero by construction"),
            )
        })
        .collect()
}

fn build_service(
    map: RoadNetwork,
    seed: u64,
    mode: ObfuscationMode,
    shards: usize,
    execution: ExecutionPolicy,
) -> opaque::OpaqueService<opaque::DefaultBackend> {
    ServiceBuilder::new()
        .map(map)
        .seed(seed)
        .shards(shards)
        .obfuscation_mode(mode)
        .execution_policy(execution)
        .verify_results(true)
        .build()
        .expect("valid configuration")
}

/// The equivalence oracle: every observable piece of a batch's output.
fn assert_identical(a: &ServiceResponse, b: &ServiceResponse, ctx: &str) {
    assert_eq!(a.outcomes, b.outcomes, "{ctx}: per-client outcomes diverged");
    assert_eq!(a.results.len(), b.results.len(), "{ctx}: delivery count diverged");
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x.client, y.client, "{ctx}: delivery order diverged");
        assert_eq!(x.path, y.path, "{ctx}: delivered path diverged for {:?}", x.client);
    }
    let a_json = serde_json::to_string(&a.report).expect("report serializes");
    let b_json = serde_json::to_string(&b.report).expect("report serializes");
    assert_eq!(a_json, b_json, "{ctx}: BatchReport not byte-identical");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn worker_pool_is_byte_identical_to_sequential(
        map in arb_map(40),
        raw_batch in arb_batch(10),
        seed in proptest::num::u64::ANY,
        threads in 2usize..9,
        mode_pick in 0u8..3,
    ) {
        let mode = match mode_pick {
            0 => ObfuscationMode::Independent,
            1 => ObfuscationMode::SharedGlobal,
            _ => ObfuscationMode::SharedClustered(ClusteringConfig::default()),
        };
        let requests = requests_on(&map, &raw_batch);
        let ctx = format!(
            "n={} requests={} seed={seed} threads={threads} mode={mode:?}",
            map.num_nodes(),
            requests.len()
        );

        let mut sequential =
            build_service(map.clone(), seed, mode, threads, ExecutionPolicy::Sequential);
        let mut pooled = build_service(
            map.clone(),
            seed,
            mode,
            threads,
            ExecutionPolicy::WorkerPool { threads },
        );

        match (sequential.process_batch(&requests), pooled.process_batch(&requests)) {
            (Ok(a), Ok(b)) => {
                assert_identical(&a, &b, &ctx);
                // Fleet-merged cumulative counters agree as well: the
                // commutative merge erases scheduling.
                prop_assert_eq!(
                    sequential.backend().stats(),
                    pooled.backend().stats(),
                    "{}: fleet stats diverged",
                    ctx
                );
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b, "{}: errors diverged", ctx),
            (a, b) => prop_assert!(
                false,
                "{}: one policy failed, the other did not: {:?} vs {:?}",
                ctx,
                a.map(|r| r.outcomes),
                b.map(|r| r.outcomes)
            ),
        }
    }

    #[test]
    fn repeated_batches_stay_identical_across_policies(
        map in arb_map(30),
        raw_batch in arb_batch(6),
        seed in proptest::num::u64::ANY,
    ) {
        // Multi-batch streams: the obfuscator RNG advances between
        // batches, shard counters accumulate — equivalence must hold at
        // every step, not just on a fresh service.
        let requests = requests_on(&map, &raw_batch);
        let mode = ObfuscationMode::SharedGlobal;
        let mut sequential =
            build_service(map.clone(), seed, mode, 3, ExecutionPolicy::Sequential);
        let mut pooled = build_service(
            map.clone(),
            seed,
            mode,
            3,
            ExecutionPolicy::WorkerPool { threads: 3 },
        );
        for round in 0..3 {
            let ctx = format!("seed={seed} round={round}");
            match (sequential.process_batch(&requests), pooled.process_batch(&requests)) {
                (Ok(a), Ok(b)) => assert_identical(&a, &b, &ctx),
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "{}", ctx),
                (a, b) => prop_assert!(false, "{}: {:?} vs {:?}", ctx, a.is_ok(), b.is_ok()),
            }
        }
        prop_assert_eq!(sequential.backend().stats(), pooled.backend().stats());
    }
}
