//! End-to-end integration: the full client → obfuscator → server → filter
//! pipeline on every network class and obfuscation mode, checked against
//! ground-truth shortest paths computed directly on the map.

use opaque::{ClusteringConfig, DirectionsServer, FakeSelection, ObfuscationMode, ServiceBuilder};
use pathsearch::SharingPolicy;
use roadnet::SpatialIndex;
use roadnet::generators::NetworkClass;
use workload::{ProtectionDistribution, QueryDistribution, WorkloadConfig, generate_requests};

fn modes() -> [ObfuscationMode; 3] {
    [
        ObfuscationMode::Independent,
        ObfuscationMode::SharedGlobal,
        ObfuscationMode::SharedClustered(ClusteringConfig::default()),
    ]
}

#[test]
fn every_class_and_mode_delivers_exact_shortest_paths() {
    for class in NetworkClass::ALL {
        let map = class.generate(600, 7).expect("valid network");
        let index = SpatialIndex::build(&map);
        let requests = generate_requests(
            &map,
            &index,
            &WorkloadConfig {
                num_requests: 8,
                queries: QueryDistribution::Uniform,
                protection: ProtectionDistribution::UniformRange { lo: 2, hi: 5 },
                seed: 7,
            },
        );
        for mode in modes() {
            let mut svc = ServiceBuilder::new()
                .map(map.clone())
                .fake_selection(FakeSelection::default_ring())
                .seed(7)
                .sharing_policy(SharingPolicy::Auto)
                .verify_results(true)
                .build()
                .expect("valid configuration");
            let response = svc
                .process_batch_with_mode(&requests, mode)
                .unwrap_or_else(|e| panic!("{} / {}: {e}", class.name(), mode));
            let (results, report) = (response.results, response.report);
            assert_eq!(results.len(), requests.len());
            for (res, req) in results.iter().zip(&requests) {
                assert_eq!(res.client, req.client);
                let truth =
                    pathsearch::shortest_path(&map, req.query.source, req.query.destination)
                        .expect("connected network");
                assert!(
                    (res.path.distance() - truth.distance()).abs() < 1e-9,
                    "{} / {}: delivered {} vs truth {}",
                    class.name(),
                    mode,
                    res.path.distance(),
                    truth.distance()
                );
            }
            // Every client's protection must be honoured.
            for ((_, breach), req) in report.per_client_breach.iter().zip(&requests) {
                let max_allowed = req.protection.breach_probability();
                assert!(
                    *breach <= max_allowed + 1e-12,
                    "{} / {}: breach {} above requested {}",
                    class.name(),
                    mode,
                    breach,
                    max_allowed
                );
            }
        }
    }
}

#[test]
fn pipeline_works_over_paged_storage() {
    let map = NetworkClass::Grid.generate(400, 3).expect("valid network");
    let index = SpatialIndex::build(&map);
    let paged = roadnet::PagedGraph::ccam(&map, 8);
    let requests = generate_requests(
        &map,
        &index,
        &WorkloadConfig { num_requests: 4, seed: 3, ..Default::default() },
    );
    let mut svc = ServiceBuilder::new()
        .map(map.clone())
        .fake_selection(FakeSelection::default_ring())
        .seed(3)
        .obfuscation_mode(ObfuscationMode::SharedGlobal)
        .build_with_backend(DirectionsServer::new(&paged, SharingPolicy::PerSource))
        .expect("valid configuration");
    let results =
        svc.process_batch(&requests).expect("pipeline succeeds over paged storage").results;
    assert_eq!(results.len(), 4);
    assert!(paged.io_stats().faults > 0, "storage layer must have been exercised");
    for (res, req) in results.iter().zip(&requests) {
        let truth = pathsearch::shortest_path(&map, req.query.source, req.query.destination)
            .expect("connected");
        assert!((res.path.distance() - truth.distance()).abs() < 1e-9);
    }
}

#[test]
fn repeated_batches_are_deterministic_per_seed() {
    let map = NetworkClass::Geometric.generate(500, 11).expect("valid network");
    let index = SpatialIndex::build(&map);
    let requests = generate_requests(
        &map,
        &index,
        &WorkloadConfig { num_requests: 6, seed: 11, ..Default::default() },
    );
    let run = || {
        let mut svc = ServiceBuilder::new()
            .map(map.clone())
            .fake_selection(FakeSelection::default_ring())
            .seed(11)
            .sharing_policy(SharingPolicy::PerSource)
            .obfuscation_mode(ObfuscationMode::SharedGlobal)
            .build()
            .expect("valid configuration");
        let response = svc.process_batch(&requests).expect("ok");
        (
            response.results.iter().map(|r| (r.client, r.path.distance())).collect::<Vec<_>>(),
            response.report.total_pairs,
            response.report.server_settled,
        )
    };
    assert_eq!(run(), run(), "same seeds must reproduce the batch bit-for-bit");
}

#[test]
fn large_batch_stress() {
    let map = NetworkClass::Grid.generate(900, 5).expect("valid network");
    let index = SpatialIndex::build(&map);
    let requests = generate_requests(
        &map,
        &index,
        &WorkloadConfig {
            num_requests: 64,
            queries: QueryDistribution::Hotspot { hotspots: 4, exponent: 1.2, spread: 0.1 },
            protection: ProtectionDistribution::UniformRange { lo: 2, hi: 8 },
            seed: 5,
        },
    );
    let mut svc = ServiceBuilder::new()
        .map(map)
        .fake_selection(FakeSelection::Uniform)
        .seed(5)
        .sharing_policy(SharingPolicy::Auto)
        .obfuscation_mode(ObfuscationMode::SharedClustered(ClusteringConfig::default()))
        .build()
        .expect("valid configuration");
    let response = svc.process_batch(&requests).expect("pipeline scales to 64 clients");
    let (results, report) = (response.results, response.report);
    assert_eq!(results.len(), 64);
    assert_eq!(report.per_client_breach.len(), 64);
    assert!(report.num_units <= 64);
}
