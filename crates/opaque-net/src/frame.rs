//! The length-delimited frame codec.
//!
//! Every message crosses the wire as one frame:
//!
//! ```text
//! ┌────────────────┬─────────┬──────────────────────┐
//! │ payload length │ version │ payload              │
//! │ u32 little-end │ 1 byte  │ `length` bytes, JSON │
//! └────────────────┴─────────┴──────────────────────┘
//! ```
//!
//! The length counts the payload only (not the 5-byte header). The
//! [`FrameDecoder`] is incremental — feed it whatever the socket
//! returned, pull complete frames out — and validates the header
//! *before* allocating the payload, so a hostile length prefix can never
//! force an unbounded allocation: anything over the configured cap is a
//! typed [`NetError::FrameTooLarge`] and the connection is closed. Peak
//! buffering is therefore bounded by `max_frame + HEADER_LEN` plus one
//! socket read's worth of bytes.

use crate::error::{NetError, Result};

/// The one protocol version this build speaks. Bump on any wire-shape
/// change; a mismatched peer gets a typed [`NetError::BadVersion`]
/// instead of a JSON parse error deep in a payload.
pub const PROTOCOL_VERSION: u8 = 1;

/// Bytes of the frame header (u32-LE payload length + version byte).
pub const HEADER_LEN: usize = 5;

/// Default payload cap: far above any legitimate message (a delivered
/// path on the bench maps serializes to a few KiB) while keeping a
/// hostile peer's buffering bounded.
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// The length-prefix check behind [`encode_frame`], on its own so the
/// over-`u32::MAX` branch is testable without allocating a 4 GiB payload.
fn payload_len_prefix(len: usize) -> Result<u32> {
    u32::try_from(len).map_err(|_| NetError::PayloadTooLarge { len })
}

/// Append one framed payload to `out`.
///
/// # Errors
/// [`NetError::PayloadTooLarge`] when the payload cannot be described by
/// the u32 length prefix — truncating the length would emit a frame whose
/// header lies about its body, corrupting the stream for the peer. `out`
/// is untouched on error.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) -> Result<()> {
    let len = payload_len_prefix(payload.len())?;
    out.reserve(HEADER_LEN + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.push(PROTOCOL_VERSION);
    out.extend_from_slice(payload);
    Ok(())
}

/// One framed payload as a fresh buffer.
///
/// # Errors
/// [`NetError::PayloadTooLarge`] — see [`encode_frame`].
pub fn frame_vec(payload: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    encode_frame(payload, &mut out)?;
    Ok(out)
}

/// Incremental frame decoder over a byte stream.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted once it outgrows the live tail.
    start: usize,
    max_frame: u32,
}

impl FrameDecoder {
    /// A decoder refusing payloads over `max_frame` bytes.
    pub fn new(max_frame: u32) -> Self {
        FrameDecoder { buf: Vec::new(), start: 0, max_frame }
    }

    /// Feed bytes read from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: the consumed prefix is dead weight.
        if self.start > 0 && self.start >= self.buf.len().saturating_sub(self.start) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.live().len()
    }

    /// The unconsumed tail of the buffer. `start <= buf.len()` is a
    /// struct invariant (`start` only advances past complete frames),
    /// but the accessor is total anyway: a violated invariant reads as
    /// an empty tail, never a panic — this is hostile-input code.
    fn live(&self) -> &[u8] {
        self.buf.get(self.start..).unwrap_or(&[])
    }

    /// Pull the next complete frame's payload, if one is buffered.
    ///
    /// # Errors
    /// [`NetError::FrameTooLarge`] / [`NetError::BadVersion`] as soon as
    /// a complete header announces them — the payload is never awaited.
    /// After an error the decoder is poisoned-by-convention: the caller
    /// must close the connection (resynchronizing an untrusted stream is
    /// not attempted).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        let live = self.live();
        let Some(&[l0, l1, l2, l3, version]) = live.first_chunk::<HEADER_LEN>() else {
            return Ok(None); // header not complete yet
        };
        let len = u32::from_le_bytes([l0, l1, l2, l3]);
        if len > self.max_frame {
            return Err(NetError::FrameTooLarge { len, max: self.max_frame });
        }
        if version != PROTOCOL_VERSION {
            return Err(NetError::BadVersion { got: version });
        }
        let total = HEADER_LEN + len as usize;
        let Some(payload) = live.get(HEADER_LEN..total) else {
            return Ok(None); // payload not complete yet
        };
        let payload = payload.to_vec();
        self.start += total;
        Ok(Some(payload))
    }

    /// Check the stream may end here: an error if a partial frame is
    /// still buffered (the peer closed mid-frame).
    ///
    /// # Errors
    /// A complete-but-invalid buffered header surfaces the same
    /// [`NetError::FrameTooLarge`] / [`NetError::BadVersion`] that
    /// [`FrameDecoder::next_frame`] would — not a `TruncatedFrame` whose
    /// `missing` count trusts a length prefix the decoder would have
    /// refused. Only an honestly incomplete frame reports
    /// [`NetError::TruncatedFrame`].
    pub fn finish(&self) -> Result<()> {
        let live = self.live();
        if live.is_empty() {
            return Ok(());
        }
        // Same validation order as next_frame: length cap, then version.
        let Some(&[l0, l1, l2, l3, version]) = live.first_chunk::<HEADER_LEN>() else {
            return Err(NetError::TruncatedFrame { missing: HEADER_LEN - live.len() });
        };
        let len = u32::from_le_bytes([l0, l1, l2, l3]);
        if len > self.max_frame {
            return Err(NetError::FrameTooLarge { len, max: self.max_frame });
        }
        if version != PROTOCOL_VERSION {
            return Err(NetError::BadVersion { got: version });
        }
        let missing = (HEADER_LEN + len as usize).saturating_sub(live.len());
        Err(NetError::TruncatedFrame { missing })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn drain(dec: &mut FrameDecoder) -> Result<Vec<Vec<u8>>> {
        let mut out = Vec::new();
        while let Some(p) = dec.next_frame()? {
            out.push(p);
        }
        Ok(out)
    }

    #[test]
    fn frames_round_trip() {
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let payloads: Vec<&[u8]> = vec![b"hello", b"", b"world"];
        for p in &payloads {
            dec.push(&frame_vec(p).unwrap());
        }
        let got = drain(&mut dec).unwrap();
        assert_eq!(got, payloads);
        assert_eq!(dec.buffered(), 0);
        dec.finish().unwrap();
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let wire = frame_vec(b"split me").unwrap();
        // Byte-at-a-time delivery: only the final byte completes a frame.
        for (i, b) in wire.iter().enumerate() {
            dec.push(&[*b]);
            let got = dec.next_frame().unwrap();
            if i + 1 < wire.len() {
                assert!(got.is_none(), "frame complete too early at byte {i}");
            } else {
                assert_eq!(got.unwrap(), b"split me");
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_allocation() {
        let mut dec = FrameDecoder::new(16);
        let mut wire = Vec::new();
        wire.extend_from_slice(&1_000_000u32.to_le_bytes());
        wire.push(PROTOCOL_VERSION);
        dec.push(&wire);
        match dec.next_frame() {
            Err(NetError::FrameTooLarge { len: 1_000_000, max: 16 }) => {}
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        // Only the 5 header bytes were ever buffered.
        assert_eq!(dec.buffered(), HEADER_LEN);
    }

    #[test]
    fn bad_version_byte_is_a_typed_error() {
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let mut wire = frame_vec(b"x").unwrap();
        wire[4] = 99;
        dec.push(&wire);
        match dec.next_frame() {
            Err(NetError::BadVersion { got: 99 }) => {}
            other => panic!("expected BadVersion, got {other:?}"),
        }
    }

    #[test]
    fn truncated_stream_fails_finish_with_missing_count() {
        // Mid-payload close.
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let wire = frame_vec(b"abcdef").unwrap();
        dec.push(&wire[..HEADER_LEN + 2]);
        assert!(dec.next_frame().unwrap().is_none());
        match dec.finish() {
            Err(NetError::TruncatedFrame { missing: 4 }) => {}
            other => panic!("expected 4 missing bytes, got {other:?}"),
        }
        // Mid-header close.
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.push(&wire[..3]);
        match dec.finish() {
            Err(NetError::TruncatedFrame { missing: 2 }) => {}
            other => panic!("expected 2 missing header bytes, got {other:?}"),
        }
        // Clean boundary is fine.
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.push(&wire);
        drain(&mut dec).unwrap();
        dec.finish().unwrap();
    }

    #[test]
    fn unencodable_payload_length_is_a_typed_error() {
        // The length check is exercised directly — allocating a >4 GiB
        // payload in a test is not reasonable, which is exactly why the
        // old silent `as u32` truncation survived so long.
        let too_big = u32::MAX as usize + 1;
        match payload_len_prefix(too_big) {
            Err(NetError::PayloadTooLarge { len }) => assert_eq!(len, too_big),
            other => panic!("expected PayloadTooLarge, got {other:?}"),
        }
        assert_eq!(payload_len_prefix(u32::MAX as usize).unwrap(), u32::MAX);
        assert_eq!(payload_len_prefix(0).unwrap(), 0);
        // And the public entry points propagate it.
        assert!(frame_vec(b"ok").is_ok());
    }

    #[test]
    fn finish_surfaces_header_errors_not_bogus_truncation() {
        // Over-cap header buffered at close: the old code trusted the
        // hostile length prefix and reported a giant bogus `missing`.
        let mut dec = FrameDecoder::new(16);
        let mut wire = Vec::new();
        wire.extend_from_slice(&1_000_000u32.to_le_bytes());
        wire.push(PROTOCOL_VERSION);
        dec.push(&wire);
        match dec.finish() {
            Err(NetError::FrameTooLarge { len: 1_000_000, max: 16 }) => {}
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }

        // Wrong-version header buffered at close.
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let mut wire = frame_vec(b"x").unwrap();
        wire[4] = 99;
        dec.push(&wire[..HEADER_LEN]);
        match dec.finish() {
            Err(NetError::BadVersion { got: 99 }) => {}
            other => panic!("expected BadVersion, got {other:?}"),
        }

        // finish() and next_frame() agree on the same buffered bytes.
        let mut by_next = FrameDecoder::new(16);
        by_next.push(&1_000_000u32.to_le_bytes());
        by_next.push(&[PROTOCOL_VERSION]);
        assert!(matches!(by_next.next_frame(), Err(NetError::FrameTooLarge { .. })));
    }

    #[test]
    fn compaction_keeps_the_buffer_bounded() {
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let wire = frame_vec(&[7u8; 128]).unwrap();
        for _ in 0..1_000 {
            dec.push(&wire);
            assert_eq!(drain(&mut dec).unwrap().len(), 1);
        }
        // The consumed prefix must not accumulate across 1000 frames.
        assert!(dec.buf.len() < 4 * wire.len(), "buffer grew to {}", dec.buf.len());
    }

    proptest! {
        /// Arbitrary payload sequences survive arbitrary re-chunking.
        #[test]
        fn prop_roundtrip_any_payloads_any_chunking(
            payloads in proptest::collection::vec(
                proptest::collection::vec(0u8..=255, 0..512), 1..8),
            chunk in 1usize..64,
        ) {
            let mut wire = Vec::new();
            for p in &payloads {
                encode_frame(p, &mut wire).unwrap();
            }
            let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
            let mut got = Vec::new();
            for piece in wire.chunks(chunk) {
                dec.push(piece);
                while let Some(p) = dec.next_frame().unwrap() {
                    got.push(p);
                }
            }
            prop_assert_eq!(got, payloads);
            dec.finish().unwrap();
        }

        /// Garbage prefixes never panic: decoding either yields a typed
        /// error or keeps waiting for bytes — and never allocates past
        /// the cap.
        #[test]
        fn prop_garbage_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
            let cap = 64u32;
            let mut dec = FrameDecoder::new(cap);
            dec.push(&bytes);
            loop {
                match dec.next_frame() {
                    Ok(Some(p)) => prop_assert!(p.len() <= cap as usize),
                    Ok(None) => break,
                    Err(NetError::FrameTooLarge { len, max }) => {
                        prop_assert!(len > max);
                        break;
                    }
                    Err(NetError::BadVersion { got }) => {
                        prop_assert_ne!(got, PROTOCOL_VERSION);
                        break;
                    }
                    Err(other) => prop_assert!(false, "unexpected error {}", other),
                }
            }
            let _ = dec.finish();
        }
    }
}
