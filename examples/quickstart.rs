//! Quickstart: protect directions queries with an OPAQUE gateway.
//!
//! Reproduces the paper's motivating scenario (§II): Alice wants directions
//! from her home to a clinic without the directions-search server learning
//! that *she* is going *there* — served through the builder-configured
//! [`opaque::OpaqueService`] gateway: typed admission, an event stream
//! with one `ResultMsg` delivered back per client (the paper's hop 4),
//! and a trailing batch report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use opaque::{
    BatchPolicy, ClientId, ClientRequest, ObfuscationMode, PathQuery, ProtectionSettings,
    ServiceBuilder, ServiceEvent, SubmitOutcome,
};
use roadnet::generators::{GridConfig, grid_network};
use roadnet::{Point, SpatialIndex};

fn main() {
    // A 30×30-block city grid stands in for the TIGER/Line map.
    let map = grid_network(&GridConfig { width: 30, height: 30, seed: 2009, ..Default::default() })
        .expect("generator produces a valid network");
    let index = SpatialIndex::build(&map);

    // Alice's home and the clinic, by coordinate → nearest road junction.
    let home = index.nearest(Point::new(3.0, 4.0));
    let clinic = index.nearest(Point::new(25.0, 22.0));
    println!("Alice's home is node {home}, the clinic is node {clinic}.");

    // Assemble the OPAQUE deployment (Figure 5) in one declaration:
    // trusted obfuscator, two round-robin server shards, result
    // verification, and an admission queue that flushes at 4 requests or
    // after 2 simulated seconds.
    let mut service = ServiceBuilder::new()
        .map(map.clone())
        .seed(42)
        .shards(2)
        .verify_results(true)
        .obfuscation_mode(ObfuscationMode::Independent)
        .batch_policy(BatchPolicy { max_batch: 4, max_delay: 2.0 })
        .build()
        .expect("valid configuration");

    // Alice asks for 3 candidate sources × 3 candidate destinations: the
    // server can pin her true query with probability at most 1/9. The
    // gateway answers every submit with a typed outcome — accepted,
    // deferred to the next window, or refused with a reason.
    let request = ClientRequest::new(
        ClientId(1),
        PathQuery::new(home, clinic),
        ProtectionSettings::new(3, 3).expect("both sizes >= 1"),
    );
    let ticket = match service.submit(request, 0.0) {
        SubmitOutcome::Accepted(t) => t,
        other => panic!("an empty queue admits: {other:?}"),
    };
    println!("Alice's request is queued under {ticket:?}.");

    // Nothing flushes yet (1 of 4 pending, 1.5s elapsed)…
    assert!(service.tick(1.5).expect("no pipeline error").is_empty());
    // …until the 2-second deadline passes: the batch is obfuscated,
    // answered, filtered, and delivered as an ordered event stream.
    let events = service.tick(2.0).expect("pipeline succeeds on a connected map");
    let (path, waited) = match &events[0] {
        ServiceEvent::ResponseReady { ticket: t, result, waited, .. } => {
            assert_eq!(*t, ticket, "the delivery answers Alice's ticket");
            (&result.path, *waited)
        }
        other => panic!("expected Alice's delivery, got {other:?}"),
    };
    println!(
        "Delivered after {waited:.1}s in queue: {} hops, network distance {:.2} — exactly the \
         shortest path.",
        path.num_edges(),
        path.distance()
    );
    let direct = pathsearch::shortest_path(&map, home, clinic).expect("connected");
    assert_eq!(path.distance(), direct.distance());

    let report = match events.last().expect("stream ends with the report") {
        ServiceEvent::BatchFlushed(report) => report,
        other => panic!("expected the batch report, got {other:?}"),
    };
    println!(
        "The {}-shard backend evaluated {} (source, destination) pairs and settled {} nodes,",
        service.backend().num_shards(),
        report.total_pairs,
        report.server_settled
    );
    println!(
        "but can only guess Alice's true query with probability {:.4} (Definition 2).",
        report.per_client_breach[0].1
    );
    println!(
        "Obfuscation added {} fake endpoints; candidate/delivered volume ratio: {:.1}x.",
        report.fakes_added,
        report.redundancy_ratio()
    );
}
