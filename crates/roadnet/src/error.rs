//! Error types for road-network construction and I/O.

use crate::ids::{EdgeId, NodeId};
use std::fmt;

/// Errors raised while building, loading, or querying a road network.
#[derive(Debug)]
pub enum RoadNetError {
    /// An edge referenced a node id outside `0..num_nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Size of the network the id was checked against.
        num_nodes: usize,
    },
    /// A weight update referenced an edge id outside `0..num_edges`.
    EdgeOutOfRange {
        /// The offending edge id.
        edge: EdgeId,
        /// Size of the network the id was checked against.
        num_edges: usize,
    },
    /// An edge weight was negative, NaN, or infinite.
    InvalidWeight {
        /// Edge tail.
        from: NodeId,
        /// Edge head.
        to: NodeId,
        /// The rejected weight.
        weight: f64,
    },
    /// A self-loop `(n, n)` was supplied; road segments connect distinct
    /// endpoints in this model.
    SelfLoop {
        /// The node looping onto itself.
        node: NodeId,
    },
    /// A node coordinate was NaN or infinite.
    InvalidCoordinate {
        /// The node with the bad coordinate.
        node: NodeId,
    },
    /// The network has no nodes.
    EmptyNetwork,
    /// A parse error in a network text format (TLN or the DIMACS subset).
    Parse {
        /// 1-based line number of the offending line; 0 for whole-file
        /// defects (missing sections, count mismatches).
        line: usize,
        /// What went wrong on that line.
        message: String,
    },
    /// An underlying I/O error while reading or writing network files.
    Io(std::io::Error),
    /// Two nodes are not connected (no path exists between them).
    Disconnected {
        /// Path source.
        from: NodeId,
        /// Path destination.
        to: NodeId,
    },
    /// A region description (membership flags, node list) does not fit
    /// the graph it was applied to.
    InvalidRegion {
        /// Why the region was rejected.
        reason: String,
    },
}

impl fmt::Display for RoadNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoadNetError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (network has {num_nodes} nodes)")
            }
            RoadNetError::EdgeOutOfRange { edge, num_edges } => {
                write!(f, "edge {edge} out of range (network has {num_edges} edges)")
            }
            RoadNetError::InvalidWeight { from, to, weight } => {
                write!(
                    f,
                    "edge ({from}, {to}) has invalid weight {weight}; weights must be finite and non-negative"
                )
            }
            RoadNetError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} is not allowed")
            }
            RoadNetError::InvalidCoordinate { node } => {
                write!(f, "node {node} has a non-finite coordinate")
            }
            RoadNetError::EmptyNetwork => write!(f, "road network has no nodes"),
            RoadNetError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            RoadNetError::Io(e) => write!(f, "i/o error: {e}"),
            RoadNetError::Disconnected { from, to } => {
                write!(f, "no path connects {from} to {to}")
            }
            RoadNetError::InvalidRegion { reason } => {
                write!(f, "invalid region: {reason}")
            }
        }
    }
}

impl std::error::Error for RoadNetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RoadNetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RoadNetError {
    fn from(e: std::io::Error) -> Self {
        RoadNetError::Io(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, RoadNetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_ids() {
        let e = RoadNetError::NodeOutOfRange { node: NodeId(9), num_nodes: 5 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('5'));

        let e = RoadNetError::EdgeOutOfRange { edge: EdgeId(7), num_edges: 3 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));

        let e = RoadNetError::InvalidWeight { from: NodeId(1), to: NodeId(2), weight: -1.0 };
        assert!(e.to_string().contains("-1"));

        let e = RoadNetError::SelfLoop { node: NodeId(4) };
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn io_error_converts_and_chains() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: RoadNetError = io.into();
        assert!(matches!(e, RoadNetError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn parse_error_reports_line() {
        let e = RoadNetError::Parse { line: 17, message: "bad token".into() };
        let s = e.to_string();
        assert!(s.contains("17") && s.contains("bad token"));
    }
}
