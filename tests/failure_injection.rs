//! Failure injection: how the pipeline reports misbehaviour — disconnected
//! maps, servers that drop or tamper with candidates, requests the map
//! cannot satisfy, and protection settings that are invalid.

use opaque::{
    ClientId, ClientRequest, DirectionsServer, FakeSelection, ObfuscationUnit, Obfuscator,
    OpaqueError, PathQuery, ProtectionSettings, filter_candidates,
};
use pathsearch::{Path, SharingPolicy};
use roadnet::generators::{GridConfig, grid_network};
use roadnet::{GraphBuilder, NodeId, Point};

fn map() -> roadnet::RoadNetwork {
    grid_network(&GridConfig { width: 12, height: 12, seed: 13, ..Default::default() })
        .expect("valid network")
}

fn request(s: u32, t: u32, f: u32) -> ClientRequest {
    ClientRequest::new(
        ClientId(0),
        PathQuery::new(NodeId(s), NodeId(t)),
        ProtectionSettings::new(f, f).expect(">= 1"),
    )
}

fn obfuscate_one(req: &ClientRequest) -> ObfuscationUnit {
    Obfuscator::new(map(), FakeSelection::default_ring(), 13)
        .obfuscate_independent(req)
        .expect("map large enough")
}

#[test]
fn disconnected_true_pair_is_a_missing_result_not_a_panic() {
    // Two-island map: query spans the islands.
    let mut b = GraphBuilder::new();
    for i in 0..6 {
        b.add_node(Point::new(i as f64, 0.0)).expect("finite");
    }
    b.add_edge(NodeId(0), NodeId(1), 1.0).expect("ok");
    b.add_edge(NodeId(1), NodeId(2), 1.0).expect("ok");
    b.add_edge(NodeId(3), NodeId(4), 1.0).expect("ok");
    b.add_edge(NodeId(4), NodeId(5), 1.0).expect("ok");
    let island_map = b.build().expect("non-empty");

    let mut ob = Obfuscator::new(island_map.clone(), FakeSelection::Uniform, 1);
    let req = request(0, 5, 2);
    let unit = ob.obfuscate_independent(&req).expect("fakes exist");
    let mut server = DirectionsServer::new(island_map, SharingPolicy::PerSource);
    let candidates = server.process(&unit.query);
    let err = filter_candidates(&unit, &candidates, None).expect_err("pair is disconnected");
    assert!(matches!(err, OpaqueError::MissingResult { source, destination }
        if source == NodeId(0) && destination == NodeId(5)));
}

#[test]
fn server_dropping_candidates_is_detected() {
    let unit = obfuscate_one(&request(0, 143, 3));
    let mut server = DirectionsServer::new(map(), SharingPolicy::PerSource);
    let mut candidates = server.process(&unit.query);
    // A lazy server returns nothing at all.
    for row in candidates.paths.iter_mut() {
        for cell in row.iter_mut() {
            *cell = None;
        }
    }
    let err = filter_candidates(&unit, &candidates, None).expect_err("all results dropped");
    assert!(matches!(err, OpaqueError::MissingResult { .. }));
}

#[test]
fn server_swapping_candidates_is_detected() {
    let unit = obfuscate_one(&request(0, 143, 3));
    let g = map();
    let mut server = DirectionsServer::new(g.clone(), SharingPolicy::PerSource);
    let mut candidates = server.process(&unit.query);
    let i = unit.query.source_index(NodeId(0)).expect("embedded");
    let j = unit.query.target_index(NodeId(143)).expect("embedded");
    // Swap the true answer with some other pair's answer.
    let other_j = (j + 1) % unit.query.targets().len();
    candidates.paths[i].swap(j, other_j);
    let err = filter_candidates(&unit, &candidates, Some(&g))
        .expect_err("swapped path has wrong endpoints");
    assert!(matches!(err, OpaqueError::CorruptResult { .. }));
}

#[test]
fn server_returning_detour_is_accepted_but_measurable() {
    // A detour (valid but non-shortest path) passes structural verification
    // — the obfuscator's map cannot tell congestion-aware routing from
    // malice — but its distance is still consistent, so clients can compare
    // against expectations.
    let g = map();
    let unit = obfuscate_one(&request(0, 143, 2));
    let mut server = DirectionsServer::new(g.clone(), SharingPolicy::PerSource);
    let mut candidates = server.process(&unit.query);
    let i = unit.query.source_index(NodeId(0)).expect("embedded");
    let j = unit.query.target_index(NodeId(143)).expect("embedded");

    // Build a genuine detour: shortest path 0 → x → 143 through a neighbour.
    let via = g.arcs(NodeId(0))[0].to;
    let leg1 = pathsearch::shortest_path(&g, NodeId(0), via).expect("connected");
    let leg2 = pathsearch::shortest_path(&g, via, NodeId(143)).expect("connected");
    let mut nodes = leg1.nodes().to_vec();
    nodes.extend_from_slice(&leg2.nodes()[1..]);
    // Deduplicate immediate backtracks if the detour reuses node 0.
    if nodes.windows(3).any(|w| w[0] == w[2]) {
        // Path verification only needs arc existence; backtracks are legal.
    }
    let detour = Path::new(nodes, leg1.distance() + leg2.distance());
    candidates.paths[i][j] = Some(detour.clone());

    let results =
        filter_candidates(&unit, &candidates, Some(&g)).expect("detour is structurally valid");
    assert!(
        results[0].path.distance()
            >= pathsearch::shortest_distance(&g, NodeId(0), NodeId(143)).expect("connected")
    );
}

#[test]
fn map_too_small_for_protection_level() {
    let tiny = grid_network(&GridConfig { width: 2, height: 2, ..Default::default() })
        .expect("valid network");
    let mut ob = Obfuscator::new(tiny, FakeSelection::Uniform, 1);
    let err = ob.obfuscate_independent(&request(0, 3, 10)).expect_err("4-node map, f=10");
    assert!(matches!(err, OpaqueError::NotEnoughFakes { .. }));
}

#[test]
fn endpoints_off_the_map_are_rejected() {
    let mut ob = Obfuscator::new(map(), FakeSelection::Uniform, 1);
    let err = ob.obfuscate_independent(&request(0, 9999, 2)).expect_err("node 9999 unknown");
    assert!(matches!(err, OpaqueError::UnknownNode { node } if node == NodeId(9999)));
}

#[test]
fn invalid_protection_settings_are_unrepresentable() {
    assert!(matches!(ProtectionSettings::new(0, 5), Err(OpaqueError::InvalidProtection { .. })));
    assert!(matches!(ProtectionSettings::new(3, 0), Err(OpaqueError::InvalidProtection { .. })));
}

#[test]
fn empty_batch_is_an_error_not_a_hang() {
    let mut ob = Obfuscator::new(map(), FakeSelection::Uniform, 1);
    for mode in [opaque::ObfuscationMode::Independent, opaque::ObfuscationMode::SharedGlobal] {
        let err = ob.obfuscate_batch(&[], mode).expect_err("empty batch");
        assert!(matches!(err, OpaqueError::EmptyBatch));
    }
}

#[test]
fn all_errors_render_useful_messages() {
    let errors: Vec<OpaqueError> = vec![
        OpaqueError::InvalidProtection { f_s: 0, f_t: 1 },
        OpaqueError::NotEnoughFakes { requested: 9, available: 3 },
        OpaqueError::UnknownNode { node: NodeId(7) },
        OpaqueError::MissingResult { source: NodeId(1), destination: NodeId(2) },
        OpaqueError::CorruptResult { source: NodeId(3), destination: NodeId(4) },
        OpaqueError::EmptyBatch,
    ];
    for e in errors {
        let msg = e.to_string();
        assert!(!msg.is_empty());
        assert!(msg.is_ascii(), "keep messages terminal-safe: {msg}");
    }
}
