//! E6 — collusion attacks on shared obfuscated queries (abstract, §I).
//!
//! The paper motivates having *both* query variants with collusion: shared
//! queries embed several clients' true endpoints, so clients inside the
//! same `Q(S,T)` can pool what they know and shrink a victim's anonymity
//! set. This experiment measures the residual breach probability as the
//! number of colluders grows, with independent obfuscation (immune — no
//! other client is embedded) as the control, and locates the crossover
//! where shared queries stop being the safer choice.

use crate::setup::{Scale, network_with_index};
use crate::table::{ExperimentTable, f3};
use opaque::attack::collusion_attack;
use opaque::{ClientId, FakeSelection, ObfuscationMode, Obfuscator};
use rand::SeedableRng;
use rand::rngs::StdRng;
use roadnet::generators::NetworkClass;
use workload::{ProtectionDistribution, QueryDistribution, WorkloadConfig, generate_requests};

/// Run E6.
pub fn run(scale: &Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E6",
        "collusion attack on shared obfuscation",
        "abstract / §I collusion claim",
        &[
            "colluders",
            "shared analytic",
            "shared empirical",
            "independent (control)",
            "shared still safer",
        ],
    );
    let (g, idx) = network_with_index(NetworkClass::Grid, scale);
    let k = 8usize; // clients in the shared query
    let f = 4u32; // per-client protection request
    let cfg = WorkloadConfig {
        num_requests: k,
        queries: QueryDistribution::Uniform,
        protection: ProtectionDistribution::Fixed { f_s: f, f_t: f },
        seed: 0xE6,
    };
    let requests = generate_requests(&g, &idx, &cfg);

    let mut ob = Obfuscator::new(g.clone(), FakeSelection::default_ring(), 0xE6);
    let units = ob.obfuscate_batch(&requests, ObfuscationMode::SharedGlobal).expect("ok");
    let unit = &units[0];
    let victim = ClientId(0);
    let independent_breach = 1.0 / (f as f64 * f as f64);
    let mut rng = StdRng::seed_from_u64(0xE6);

    for colluders in 0..=(k - 2) {
        let conspirators: Vec<ClientId> = (1..=colluders as u32).map(ClientId).collect();
        let rep = collusion_attack(unit, victim, &conspirators, scale.trials, &mut rng);
        t.row(vec![
            colluders.to_string(),
            f3(rep.analytic),
            f3(rep.empirical),
            f3(independent_breach),
            if rep.analytic <= independent_breach { "yes" } else { "NO" }.into(),
        ]);
    }
    t.note(format!(
        "shared query embeds {k} clients: |S|={}, |T|={}",
        unit.query.sources().len(),
        unit.query.targets().len()
    ));
    t.note("with 0 colluders shared breach beats the independent control; each colluder erodes it");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_breach_monotonically_degrades_with_colluders() {
        let t = run(&Scale::quick());
        let analytic: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        for w in analytic.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "collusion must not improve privacy: {analytic:?}");
        }
        // No colluders: shared is at least as good as independent.
        let first = &t.rows[0];
        let shared: f64 = first[1].parse().unwrap();
        let control: f64 = first[3].parse().unwrap();
        assert!(shared <= control + 1e-12);
    }

    #[test]
    fn e6_empirical_matches_analytic() {
        let t = run(&Scale::quick());
        for row in &t.rows {
            let a: f64 = row[1].parse().unwrap();
            let e: f64 = row[2].parse().unwrap();
            assert!((a - e).abs() < 0.02, "Monte-Carlo mismatch: {row:?}");
        }
    }
}
