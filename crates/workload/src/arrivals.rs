//! Temporal request arrivals and batching windows.
//!
//! The paper's obfuscator receives a *stream* of requests and clusters
//! "the received queries" (§IV) — which implicitly requires collecting
//! requests for some window before obfuscating them together. This module
//! models that: arrival processes over a time horizon, and a windowing
//! function turning the stream into batches. Experiment E12 sweeps the
//! window length to expose the deployment trade-off (bigger windows →
//! bigger batches → better sharing and breach probability, but higher
//! answer latency).
//!
//! Three [`ArrivalProcess`]es are available. [`ArrivalProcess::Poisson`]
//! is the memoryless baseline. [`ArrivalProcess::Bursty`] is a two-state
//! Markov-modulated Poisson process — exponential-length burst and quiet
//! phases whose rates bracket the base rate — producing the clumped
//! traffic that stresses batch admission. [`ArrivalProcess::Diurnal`]
//! modulates the rate sinusoidally (Lewis–Shedler thinning), the
//! day/night swell a deployed directions service sees. All three are
//! deterministic per seed: the same [`crate::WorkloadConfig::seed`]
//! yields the same [`TimedRequest`] stream, byte for byte.

use crate::distributions::QuerySampler;
use crate::generator::WorkloadConfig;
use opaque::{ClientId, ClientRequest, PathQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::{RoadNetwork, SpatialIndex};

/// A request stamped with its arrival time (seconds from stream start).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimedRequest {
    /// Arrival offset in seconds from stream start.
    pub arrival: f64,
    /// The request itself.
    pub request: ClientRequest,
}

/// Parameters for [`poisson_stream`].
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ArrivalConfig {
    /// Mean request arrivals per second (λ of the Poisson process).
    pub rate_per_sec: f64,
    /// Length of the generated stream, in seconds.
    pub horizon_secs: f64,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig { rate_per_sec: 2.0, horizon_secs: 60.0 }
    }
}

/// The temporal shape of a request stream.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at the configured rate — the baseline.
    Poisson,
    /// Two-state Markov-modulated Poisson process: bursts at
    /// `multiplier ×` the base rate alternate with quiet phases at
    /// `1/multiplier ×`, each phase exponentially distributed around its
    /// mean length. The long-run rate stays near the base rate while the
    /// index of dispersion rises well above Poisson's 1.
    Bursty {
        /// Rate multiplier during a burst (and divisor when quiet); > 1.
        multiplier: f64,
        /// Mean burst-phase length, seconds.
        mean_burst_secs: f64,
        /// Mean quiet-phase length, seconds.
        mean_quiet_secs: f64,
    },
    /// Sinusoidal rate modulation via Lewis–Shedler thinning:
    /// `λ(t) = rate · (1 + amplitude · sin(2πt / period))`.
    Diurnal {
        /// One full day/night cycle, seconds.
        period_secs: f64,
        /// Swing of the modulation, in `[0, 1)`.
        amplitude: f64,
    },
}

/// Generate a Poisson request stream over `map`. Spatial/protection
/// characteristics come from `workload` (its `num_requests` is ignored —
/// the stream length is governed by the horizon); timing from `arrivals`.
///
/// Equivalent to [`arrival_stream`] with [`ArrivalProcess::Poisson`] —
/// and pinned to it draw-for-draw by a regression test, so the streams
/// seeded experiments recorded before the process enum existed never
/// shift.
pub fn poisson_stream(
    map: &RoadNetwork,
    index: &SpatialIndex,
    workload: &WorkloadConfig,
    arrivals: &ArrivalConfig,
) -> Vec<TimedRequest> {
    arrival_stream(map, index, workload, arrivals, ArrivalProcess::Poisson)
}

/// Generate a request stream whose timing follows `process`.
///
/// Spatial/protection characteristics come from `workload` (its
/// `num_requests` is ignored — the stream length is governed by the
/// horizon); the mean rate and horizon from `arrivals`.
pub fn arrival_stream(
    map: &RoadNetwork,
    index: &SpatialIndex,
    workload: &WorkloadConfig,
    arrivals: &ArrivalConfig,
    process: ArrivalProcess,
) -> Vec<TimedRequest> {
    assert!(arrivals.rate_per_sec > 0.0, "arrival rate must be positive");
    assert!(arrivals.horizon_secs > 0.0, "horizon must be positive");
    match process {
        ArrivalProcess::Poisson => {}
        ArrivalProcess::Bursty { multiplier, mean_burst_secs, mean_quiet_secs } => {
            assert!(multiplier > 1.0, "burst multiplier must exceed 1");
            assert!(mean_burst_secs > 0.0 && mean_quiet_secs > 0.0, "phase means must be positive");
        }
        ArrivalProcess::Diurnal { period_secs, amplitude } => {
            assert!(period_secs > 0.0, "period must be positive");
            assert!((0.0..1.0).contains(&amplitude), "amplitude must be in [0, 1)");
        }
    }
    let mut rng = StdRng::seed_from_u64(workload.seed ^ 0x6172_7276); // "arrv"
    let sampler = QuerySampler::new(map, index, workload.queries, &mut rng);

    // Bursty bookkeeping: current phase and its exponential end time.
    let mut in_burst = false;
    let mut phase_end = match process {
        ArrivalProcess::Bursty { mean_quiet_secs, .. } => {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            -u.ln() * mean_quiet_secs
        }
        _ => f64::INFINITY,
    };

    let mut out = Vec::new();
    let mut t = 0.0f64;
    let mut id = 0u32;
    loop {
        match process {
            // Exponential inter-arrival times: -ln(U)/λ. This arm's draw
            // sequence IS the legacy `poisson_stream` — do not reorder.
            ArrivalProcess::Poisson => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t += -u.ln() / arrivals.rate_per_sec;
            }
            ArrivalProcess::Bursty { multiplier, mean_burst_secs, mean_quiet_secs } => {
                // Draw from the current phase's rate; a draw that crosses
                // the phase boundary is discarded and redrawn from the
                // boundary (valid by memorylessness of the exponential).
                loop {
                    let rate = if in_burst {
                        arrivals.rate_per_sec * multiplier
                    } else {
                        arrivals.rate_per_sec / multiplier
                    };
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let candidate = t + -u.ln() / rate;
                    if candidate < phase_end {
                        t = candidate;
                        break;
                    }
                    t = phase_end;
                    in_burst = !in_burst;
                    let mean = if in_burst { mean_burst_secs } else { mean_quiet_secs };
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    phase_end = t + -u.ln() * mean;
                    if t >= arrivals.horizon_secs {
                        break;
                    }
                }
            }
            ArrivalProcess::Diurnal { period_secs, amplitude } => {
                // Lewis–Shedler thinning against λmax = rate·(1+amplitude).
                let lambda_max = arrivals.rate_per_sec * (1.0 + amplitude);
                loop {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    t += -u.ln() / lambda_max;
                    if t >= arrivals.horizon_secs {
                        break;
                    }
                    let lambda_t = arrivals.rate_per_sec
                        * (1.0 + amplitude * (2.0 * std::f64::consts::PI * t / period_secs).sin());
                    let accept: f64 = rng.gen_range(0.0..1.0);
                    if accept <= lambda_t / lambda_max {
                        break;
                    }
                }
            }
        }
        if t >= arrivals.horizon_secs {
            break;
        }
        let (s, d) = sampler.sample(&mut rng);
        let protection = sample_protection(workload, &mut rng);
        out.push(TimedRequest {
            arrival: t,
            request: ClientRequest::new(ClientId(id), PathQuery::new(s, d), protection),
        });
        id += 1;
    }
    out
}

fn sample_protection(workload: &WorkloadConfig, rng: &mut StdRng) -> opaque::ProtectionSettings {
    use crate::generator::ProtectionDistribution;
    match workload.protection {
        ProtectionDistribution::Fixed { f_s, f_t } => {
            opaque::ProtectionSettings::new(f_s, f_t).expect("validated at construction")
        }
        ProtectionDistribution::UniformRange { lo, hi } => {
            opaque::ProtectionSettings::new(rng.gen_range(lo..=hi), rng.gen_range(lo..=hi))
                .expect("range >= 1")
        }
    }
}

/// One batch cut from the stream, with its latency accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowBatch {
    /// Requests that arrived within the window, in arrival order.
    pub requests: Vec<ClientRequest>,
    /// Time the batch is released to the obfuscator (window close).
    pub release_at: f64,
    /// Mean time the batch's requests waited from arrival to release.
    pub mean_wait: f64,
}

/// Cut a stream into fixed-length windows. Empty windows produce no batch.
///
/// This is the *offline* (whole-stream, fixed-grid) windowing used for
/// workload analysis; a live deployment batches through
/// `opaque::service::Batcher`, whose deadline is measured from each
/// batch's oldest request rather than a global grid. Experiment E12 used
/// this function before the service layer existed and now drives the
/// `Batcher` directly; this one is kept as the pure-function reference for
/// stream post-processing.
pub fn window_batches(stream: &[TimedRequest], window_secs: f64) -> Vec<WindowBatch> {
    assert!(window_secs > 0.0, "window must be positive");
    let mut batches: Vec<WindowBatch> = Vec::new();
    let mut current: Vec<&TimedRequest> = Vec::new();
    let mut window_end = window_secs;

    let flush =
        |current: &mut Vec<&TimedRequest>, window_end: f64, batches: &mut Vec<WindowBatch>| {
            if current.is_empty() {
                return;
            }
            let mean_wait =
                current.iter().map(|r| window_end - r.arrival).sum::<f64>() / current.len() as f64;
            batches.push(WindowBatch {
                requests: current.iter().map(|r| r.request).collect(),
                release_at: window_end,
                mean_wait,
            });
            current.clear();
        };

    for tr in stream {
        while tr.arrival >= window_end {
            flush(&mut current, window_end, &mut batches);
            window_end += window_secs;
        }
        current.push(tr);
    }
    flush(&mut current, window_end, &mut batches);
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ProtectionDistribution;
    use roadnet::generators::{GridConfig, grid_network};

    fn setup() -> (RoadNetwork, SpatialIndex) {
        let g = grid_network(&GridConfig { width: 15, height: 15, seed: 8, ..Default::default() })
            .unwrap();
        let idx = SpatialIndex::build(&g);
        (g, idx)
    }

    fn stream(rate: f64, horizon: f64, seed: u64) -> Vec<TimedRequest> {
        let (g, idx) = setup();
        poisson_stream(
            &g,
            &idx,
            &WorkloadConfig { seed, ..Default::default() },
            &ArrivalConfig { rate_per_sec: rate, horizon_secs: horizon },
        )
    }

    #[test]
    fn poisson_rate_is_approximately_honoured() {
        let s = stream(5.0, 200.0, 1);
        let got = s.len() as f64 / 200.0;
        assert!((got - 5.0).abs() < 0.75, "rate {got} too far from 5.0");
        // Arrival times strictly increasing, within the horizon.
        for w in s.windows(2) {
            assert!(w[0].arrival < w[1].arrival);
        }
        assert!(s.last().unwrap().arrival < 200.0);
        // Client ids dense in arrival order.
        for (i, tr) in s.iter().enumerate() {
            assert_eq!(tr.request.client, ClientId(i as u32));
        }
    }

    #[test]
    fn windowing_partitions_the_stream() {
        let s = stream(3.0, 50.0, 2);
        let batches = window_batches(&s, 5.0);
        let total: usize = batches.iter().map(|b| b.requests.len()).sum();
        assert_eq!(total, s.len(), "every request lands in exactly one batch");
        for b in &batches {
            assert!(b.mean_wait >= 0.0 && b.mean_wait <= 5.0 + 1e-9);
            assert!((b.release_at / 5.0).fract().abs() < 1e-9, "release on window boundary");
        }
    }

    #[test]
    fn bigger_windows_mean_bigger_batches_and_longer_waits() {
        let s = stream(4.0, 100.0, 3);
        let small = window_batches(&s, 1.0);
        let large = window_batches(&s, 10.0);
        let mean_size = |b: &[WindowBatch]| {
            b.iter().map(|x| x.requests.len()).sum::<usize>() as f64 / b.len() as f64
        };
        let mean_wait = |b: &[WindowBatch]| {
            b.iter().map(|x| x.mean_wait * x.requests.len() as f64).sum::<f64>()
                / b.iter().map(|x| x.requests.len()).sum::<usize>() as f64
        };
        assert!(mean_size(&large) > mean_size(&small) * 5.0);
        assert!(mean_wait(&large) > mean_wait(&small));
    }

    #[test]
    fn sparse_stream_skips_empty_windows() {
        let s = stream(0.05, 100.0, 4); // ~5 requests over 100s
        let batches = window_batches(&s, 1.0);
        assert_eq!(batches.iter().map(|b| b.requests.len()).sum::<usize>(), s.len());
        for b in &batches {
            assert!(!b.requests.is_empty(), "no empty batches emitted");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(stream(2.0, 30.0, 9), stream(2.0, 30.0, 9));
        assert_ne!(stream(2.0, 30.0, 9), stream(2.0, 30.0, 10));
    }

    fn process_stream(
        process: ArrivalProcess,
        rate: f64,
        horizon: f64,
        seed: u64,
    ) -> Vec<TimedRequest> {
        let (g, idx) = setup();
        arrival_stream(
            &g,
            &idx,
            &WorkloadConfig { seed, ..Default::default() },
            &ArrivalConfig { rate_per_sec: rate, horizon_secs: horizon },
            process,
        )
    }

    const BURSTY: ArrivalProcess =
        ArrivalProcess::Bursty { multiplier: 6.0, mean_burst_secs: 3.0, mean_quiet_secs: 9.0 };
    const DIURNAL: ArrivalProcess = ArrivalProcess::Diurnal { period_secs: 100.0, amplitude: 0.9 };

    #[test]
    fn poisson_process_reproduces_the_legacy_stream_draw_for_draw() {
        assert_eq!(process_stream(ArrivalProcess::Poisson, 3.0, 60.0, 7), stream(3.0, 60.0, 7));
    }

    #[test]
    fn every_process_is_deterministic_per_seed_and_well_formed() {
        for process in [ArrivalProcess::Poisson, BURSTY, DIURNAL] {
            let a = process_stream(process, 4.0, 120.0, 11);
            let b = process_stream(process, 4.0, 120.0, 11);
            assert_eq!(a, b, "{process:?} not seed-deterministic");
            assert_ne!(a, process_stream(process, 4.0, 120.0, 12), "{process:?} ignores the seed");
            assert!(!a.is_empty(), "{process:?} produced nothing");
            for w in a.windows(2) {
                assert!(w[0].arrival < w[1].arrival, "{process:?} times not increasing");
            }
            assert!(a.last().unwrap().arrival < 120.0);
            for (i, tr) in a.iter().enumerate() {
                assert_eq!(tr.request.client, ClientId(i as u32), "{process:?} ids not dense");
            }
        }
    }

    /// Index of dispersion (variance/mean of per-second counts): 1 for
    /// Poisson, well above 1 for the burst-modulated process.
    fn dispersion(stream: &[TimedRequest], horizon: f64) -> f64 {
        let bins = horizon as usize;
        let mut counts = vec![0f64; bins];
        for tr in stream {
            counts[(tr.arrival as usize).min(bins - 1)] += 1.0;
        }
        let mean = counts.iter().sum::<f64>() / bins as f64;
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / bins as f64;
        var / mean
    }

    #[test]
    fn bursty_arrivals_are_overdispersed_relative_to_poisson() {
        let horizon = 400.0;
        let poisson =
            dispersion(&process_stream(ArrivalProcess::Poisson, 4.0, horizon, 21), horizon);
        let bursty = dispersion(&process_stream(BURSTY, 4.0, horizon, 21), horizon);
        assert!(
            bursty > poisson * 2.0,
            "bursty dispersion {bursty:.2} not clearly above poisson {poisson:.2}"
        );
    }

    #[test]
    fn diurnal_peaks_outdraw_troughs() {
        // Peak quarter of each 100 s cycle is around t ≡ 25, trough around 75.
        let s = process_stream(DIURNAL, 4.0, 500.0, 31);
        let (mut peak, mut trough) = (0usize, 0usize);
        for tr in &s {
            let phase = tr.arrival % 100.0;
            if (12.5..37.5).contains(&phase) {
                peak += 1;
            } else if (62.5..87.5).contains(&phase) {
                trough += 1;
            }
        }
        assert!(
            peak as f64 > trough as f64 * 2.0,
            "peak {peak} vs trough {trough}: modulation too weak"
        );
    }

    #[test]
    fn arrival_process_round_trips_through_serde() {
        for process in [ArrivalProcess::Poisson, BURSTY, DIURNAL] {
            let json = serde_json::to_string(&process).unwrap();
            let back: ArrivalProcess = serde_json::from_str(&json).unwrap();
            assert_eq!(back, process, "{json}");
        }
    }

    #[test]
    fn protection_range_respected_in_stream() {
        let (g, idx) = setup();
        let s = poisson_stream(
            &g,
            &idx,
            &WorkloadConfig {
                protection: ProtectionDistribution::UniformRange { lo: 2, hi: 4 },
                seed: 5,
                ..Default::default()
            },
            &ArrivalConfig { rate_per_sec: 3.0, horizon_secs: 40.0 },
        );
        for tr in &s {
            assert!((2..=4).contains(&tr.request.protection.f_s));
            assert!((2..=4).contains(&tr.request.protection.f_t));
        }
    }
}
