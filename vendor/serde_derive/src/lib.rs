//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits (the owned [`Value`]-model variants) for the type shapes this
//! repository actually uses:
//!
//! * structs with named fields          → JSON objects;
//! * newtype structs (`struct Id(u32)`) → the inner value, transparently;
//! * tuple structs with ≥ 2 fields      → JSON arrays;
//! * enums with unit variants           → the variant name as a string;
//! * enums with newtype variants        → `{"Variant": <inner>}`;
//! * enums with struct variants         → `{"Variant": {fields…}}`;
//!
//! matching serde's externally-tagged default representation. Generic types
//! and `#[serde(...)]` attributes are intentionally unsupported (the derive
//! panics at compile time with a clear message), since nothing in the
//! workspace needs them. The parser walks the raw `proc_macro` token stream
//! directly — no `syn`/`quote`, which are unavailable offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// A tiny structural model of the derived item.

enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields: only the arity matters.
    Tuple(usize),
    /// No payload at all.
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------------
// Token-stream parsing.

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, including expanded doc comments) and
    // the visibility qualifier.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // `pub(crate)` and friends carry a parenthesized scope.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic type `{name}` is not supported");
        }
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde derive: malformed struct body: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde derive: malformed enum body: {other:?}"),
            };
            let variants =
                split_top_level(body).into_iter().map(|segment| parse_variant(segment)).collect();
            Item::Enum { name, variants }
        }
        other => panic!("serde derive: unsupported item kind `{other}`"),
    }
}

fn parse_variant(tokens: Vec<TokenTree>) -> Variant {
    let mut it = tokens.into_iter().peekable();
    // Skip variant attributes.
    while let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '#' {
            it.next();
            it.next();
        } else {
            break;
        }
    }
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected variant name, got {other:?}"),
    };
    let fields = match it.next() {
        None => Fields::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(split_top_level(g.stream()).len())
        }
        other => panic!("serde derive: malformed variant `{name}`: {other:?}"),
    };
    Variant { name, fields }
}

/// Split a token stream on top-level commas. Commas inside nested groups
/// never surface (groups are single trees); commas inside generic argument
/// lists are skipped by tracking `<`/`>` depth.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tree in stream {
        match &tree {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                }
                continue;
            }
            _ => {}
        }
        current.push(tree);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Extract field names from a named-field list: for each top-level
/// comma-separated segment, the first identifier after attributes and
/// visibility is the field name.
fn named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|segment| {
            let mut it = segment.into_iter().peekable();
            loop {
                match it.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                        it.next();
                    }
                    Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                        if let Some(TokenTree::Group(g)) = it.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                it.next();
                            }
                        }
                    }
                    Some(TokenTree::Ident(id)) => return id.to_string(),
                    other => panic!("serde derive: malformed field: {other:?}"),
                }
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation (plain source text, parsed back into a token stream).

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(::std::vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants.iter().map(|v| serialize_arm(name, v)).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn serialize_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        Fields::Unit => format!(
            "{enum_name}::{vname} => \
             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
        ),
        Fields::Tuple(1) => format!(
            "{enum_name}::{vname}(ref __f0) => ::serde::Value::Object(::std::vec![(\
             ::std::string::String::from(\"{vname}\"), \
             ::serde::Serialize::to_value(__f0))]),"
        ),
        Fields::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("ref __f{i}")).collect();
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(__f{i})")).collect();
            format!(
                "{enum_name}::{vname}({}) => ::serde::Value::Object(::std::vec![(\
                 ::std::string::String::from(\"{vname}\"), \
                 ::serde::Value::Array(::std::vec![{}]))]),",
                binders.join(", "),
                items.join(", ")
            )
        }
        Fields::Named(names) => {
            let binders: Vec<String> = names.iter().map(|f| format!("ref {f}")).collect();
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![(\
                 ::std::string::String::from(\"{vname}\"), \
                 ::serde::Value::Object(::std::vec![{}]))]),",
                binders.join(", "),
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::__field(__entries, \"{f}\"))?"
                            )
                        })
                        .collect();
                    format!(
                        "let __entries = match __v {{\n\
                             ::serde::Value::Object(e) => e.as_slice(),\n\
                             _ => return ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"object for struct {name}\")),\n\
                         }};\n\
                         ::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "let __items = match __v {{\n\
                             ::serde::Value::Array(items) if items.len() == {n} => items,\n\
                             _ => return ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"array of {n} for {name}\")),\n\
                         }};\n\
                         ::std::result::Result::Ok({name}({}))",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!("\"{0}\" => return ::std::result::Result::Ok({name}::{0}),", v.name)
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| deserialize_tagged_arm(name, v))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if let ::serde::Value::Str(__s) = __v {{\n\
                             match __s.as_str() {{ {} _ => {{}} }}\n\
                         }}\n\
                         if let ::serde::Value::Object(__outer) = __v {{\n\
                             if __outer.len() == 1 {{\n\
                                 let (__tag, __inner) = &__outer[0];\n\
                                 match __tag.as_str() {{ {} _ => {{}} }}\n\
                             }}\n\
                         }}\n\
                         ::std::result::Result::Err(\
                             ::serde::DeError::expected(\"a variant of {name}\"))\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    }
}

fn deserialize_tagged_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        Fields::Unit => unreachable!("unit variants handled via the string form"),
        Fields::Tuple(1) => format!(
            "\"{vname}\" => return ::std::result::Result::Ok(\
             {enum_name}::{vname}(::serde::Deserialize::from_value(__inner)?)),"
        ),
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "\"{vname}\" => {{\n\
                     let __items = match __inner {{\n\
                         ::serde::Value::Array(items) if items.len() == {n} => items,\n\
                         _ => return ::std::result::Result::Err(::serde::DeError::expected(\
                             \"array of {n} for variant {vname}\")),\n\
                     }};\n\
                     return ::std::result::Result::Ok({enum_name}::{vname}({}));\n\
                 }}",
                inits.join(", ")
            )
        }
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::__field(__entries, \"{f}\"))?"
                    )
                })
                .collect();
            format!(
                "\"{vname}\" => {{\n\
                     let __entries = match __inner {{\n\
                         ::serde::Value::Object(e) => e.as_slice(),\n\
                         _ => return ::std::result::Result::Err(::serde::DeError::expected(\
                             \"object for variant {vname}\")),\n\
                     }};\n\
                     return ::std::result::Result::Ok({enum_name}::{vname} {{ {} }});\n\
                 }}",
                inits.join(", ")
            )
        }
    }
}
