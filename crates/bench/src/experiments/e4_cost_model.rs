//! E4 — Lemma 1 cost-model validation (§III-B).
//!
//! Lemma 1 predicts the processing cost of an obfuscated query as
//! `O(Σ_{s∈S} max_{t∈T} ‖s,t‖²)`. The harness calibrates the constant on
//! single-pair queries, then sweeps `|S| × |T|` and compares the
//! prediction against the settled-node count of the MSMD processor —
//! alongside the naive `|S|·|T|`-searches cost the sharing avoids.

use crate::setup::{Scale, network_with_index};
use crate::table::{ExperimentTable, f3};
use opaque::{ClientId, ClientRequest, FakeSelection, Obfuscator, PathQuery, ProtectionSettings};
use pathsearch::{CostModel, SharingPolicy, msmd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::NodeId;
use roadnet::generators::NetworkClass;

/// Run E4.
pub fn run(scale: &Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E4",
        "Lemma 1: predicted vs measured obfuscated-query cost",
        "Lemma 1 / §III-B cost analysis",
        &[
            "|S|",
            "|T|",
            "predicted settled",
            "measured (per-source)",
            "rel err",
            "naive settled",
            "sharing speedup",
        ],
    );
    let (g, _) = network_with_index(NetworkClass::Geometric, scale);
    let n = g.num_nodes() as u32;
    let mut rng = StdRng::seed_from_u64(0xE4);
    let model = CostModel::calibrate(&g, scale.queries.max(30), &mut rng);
    t.note(format!(
        "calibrated coeff={} settled/dist², r²={} on {} samples",
        f3(model.coeff),
        f3(model.r_squared),
        model.samples
    ));

    let mut ob = Obfuscator::new(g.clone(), FakeSelection::default_ring(), 0xE4);
    let configs = [(1u32, 1u32), (1, 4), (4, 1), (2, 2), (4, 4), (8, 2), (2, 8), (8, 8)];
    let repeats = (scale.queries / 4).max(2);

    for (f_s, f_t) in configs {
        let mut predicted = 0.0;
        let mut measured = 0u64;
        let mut naive = 0u64;
        for _ in 0..repeats {
            let (s, d) = loop {
                let s = NodeId(rng.gen_range(0..n));
                let d = NodeId(rng.gen_range(0..n));
                if s != d {
                    break (s, d);
                }
            };
            let req = ClientRequest::new(
                ClientId(0),
                PathQuery::new(s, d),
                ProtectionSettings::new(f_s, f_t).expect("positive"),
            );
            let unit = ob.obfuscate_independent(&req).expect("map large enough");
            let shared =
                msmd(&g, unit.query.sources(), unit.query.targets(), SharingPolicy::PerSource);
            measured += shared.stats.settled;
            let naive_r = msmd(&g, unit.query.sources(), unit.query.targets(), SharingPolicy::None);
            naive += naive_r.stats.settled;

            // Lemma 1's input: per source, the max *network* distance to any
            // target — read off the shared result itself.
            let max_dists: Vec<f64> = (0..unit.query.sources().len())
                .map(|i| {
                    (0..unit.query.targets().len())
                        .filter_map(|j| shared.distance(i, j))
                        .fold(0.0, f64::max)
                })
                .collect();
            predicted += model.predict_obfuscated(&max_dists);
        }
        let meas = measured as f64 / repeats as f64;
        let pred = predicted / repeats as f64;
        let nai = naive as f64 / repeats as f64;
        t.row(vec![
            f_s.to_string(),
            f_t.to_string(),
            f3(pred),
            f3(meas),
            f3((pred - meas).abs() / meas),
            f3(nai),
            f3(nai / meas),
        ]);
    }
    t.note("per-source sharing cost grows with |S| but is nearly flat in |T| (the Lemma 1 observation)");
    t.note("`sharing speedup` = naive |S|·|T| searches vs per-source multi-destination trees");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_prediction_is_in_the_right_ballpark() {
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), 8);
        for row in &t.rows {
            let rel: f64 = row[4].parse().unwrap();
            assert!(rel < 2.5, "Lemma 1 prediction off by {rel}x: {row:?}");
        }
    }

    #[test]
    fn e4_sharing_speedup_grows_with_targets() {
        let t = run(&Scale::quick());
        let find = |s: &str, d: &str| {
            t.rows
                .iter()
                .find(|r| r[0] == s && r[1] == d)
                .unwrap_or_else(|| panic!("row ({s},{d})"))
                .clone()
        };
        let narrow: f64 = find("1", "1")[6].parse().unwrap();
        let wide: f64 = find("2", "8")[6].parse().unwrap();
        assert!(wide > narrow, "speedup should grow with |T|: {narrow} vs {wide}");
        // With one target there is nothing to share.
        assert!((narrow - 1.0).abs() < 0.2, "1x1 speedup should be ~1, got {narrow}");
    }
}
