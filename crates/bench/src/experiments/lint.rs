//! LINT — the workspace invariant surfaces as a trend line.
//!
//! Not a paper artifact: this pseudo-experiment runs the `opaque-lint`
//! checker (docs/static_analysis.md) over the workspace it was built
//! from and records the sizes of the two explicitly-audited surfaces —
//! censused `unsafe` sites and justified allow-marker exceptions — so
//! the perf trajectory (`BENCH_<n>.json`) charts their growth across
//! merges alongside the runtime metrics. A surface that only ever grows
//! is a surface nobody is re-reviewing; the chart makes that visible.

use crate::setup::Scale;
use crate::table::ExperimentTable;
use std::path::{Path, PathBuf};

/// The workspace root this binary was built from — a compile-time
/// anchor, so the run works from any CWD (CI, `cargo test`, by hand).
fn repo_root() -> PathBuf {
    // crates/bench -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).map(Path::to_path_buf).unwrap()
}

/// Run the LINT pseudo-experiment. `Scale` is ignored: the linter
/// always walks the whole workspace.
pub fn run(_scale: &Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "LINT",
        "workspace invariant surfaces (opaque-lint)",
        "static-analysis gate trend — not a paper artifact (docs/static_analysis.md)",
        &["surface", "count"],
    );
    let root = repo_root();
    let cfg = match std::fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => opaque_lint::Config::parse(&text).expect("lint.toml parses"),
        Err(_) => opaque_lint::Config::default(),
    };
    let report = opaque_lint::run(&root, &cfg).expect("lint walk reads the workspace");
    // The perf job is not the gate — lint-gate and the workspace-clean
    // test are — but a trajectory recorded from a dirty tree would
    // chart noise, so hold the same line here.
    assert!(
        report.violations.is_empty(),
        "workspace has lint violations; run `cargo run -p opaque-lint` and fix or justify them"
    );

    t.row(vec!["violations".into(), report.violations.len().to_string()]);
    t.row(vec!["unsafe sites (censused)".into(), report.census.len().to_string()]);
    t.row(vec!["allowed sites (justified)".into(), report.allowed.len().to_string()]);
    t.row(vec!["files scanned".into(), report.files_scanned.to_string()]);
    t.row(vec!["docs checked".into(), report.docs_checked.to_string()]);
    t.note("same engine as CI's lint-gate job and crates/lint/tests/workspace_clean.rs");
    t.metric("lint_unsafe_blocks", report.census.len() as f64);
    t.metric("lint_allowed_sites", report.allowed.len() as f64);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::PerfPoint;

    #[test]
    fn records_both_lint_metrics_from_a_clean_tree() {
        let t = run(&Scale::quick());
        // The run itself asserts zero violations; here we pin that the
        // metrics land and flow into the perf point under the id the
        // trend tooling keys on.
        assert!(t.metric_value("lint_unsafe_blocks").unwrap() >= 1.0, "reactor site censused");
        assert!(t.metric_value("lint_allowed_sites").unwrap() >= 1.0, "markers counted");
        let p = PerfPoint::from_table(&t, 1.0);
        assert_eq!(p.experiment, "lint");
        assert_eq!(p.lint_unsafe_blocks, t.metric_value("lint_unsafe_blocks").unwrap());
        assert_eq!(p.lint_allowed_sites, t.metric_value("lint_allowed_sites").unwrap());
    }
}
